package pipeline

import (
	"context"
	"fmt"

	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sem"
)

// runLint is the body of the optional "lint" phase: source lints over a
// fresh parse (spans must anchor to the user's source text, not to the
// transformed program, where dead code is already gone and expressions are
// rewritten), then the verdict audit over the transformed program the
// parallelizer actually classified.
func runLint(ctx context.Context, guard *comperr.Guard, rec *obs.Recorder, opts Options,
	src string, mode parallel.Mode, info *sem.Info, pz *parallel.Parallelizer,
	reports []*parallel.LoopReport) ([]lint.Diag, error) {

	fprog, err := lang.Parse(src)
	if err != nil {
		// The pipeline parsed the same text moments ago; a failure here is
		// an internal inconsistency, not a user error.
		return nil, fmt.Errorf("internal: lint reparse: %w", err)
	}
	finfo, err := sem.Check(fprog)
	if err != nil {
		return nil, fmt.Errorf("internal: lint recheck: %w", err)
	}
	fmod := dataflow.ComputeMod(finfo)
	// In Full mode the source lints get their own property analysis over
	// the fresh program, so the out-of-bounds proof can see index-array
	// value bounds.
	var fprop *property.Analysis
	if mode == parallel.Full {
		fhp, err := cfg.BuildHCGCtx(ctx, fprog, opts.Jobs)
		if err != nil {
			return nil, err
		}
		fprop = property.New(finfo, fhp, fmod)
		fprop.NoRecurrence = opts.NoRecurrence
		fprop.Guard = guard
	}
	diags := lint.Source(finfo, fmod, fprop, guard)

	audit, err := lint.Audit(info, pz.Property(), reports, lint.AuditOptions{
		Ctx:   ctx,
		Guard: guard,
		Rec:   rec,
	})
	if err != nil {
		return nil, err
	}
	diags = append(diags, audit...)
	lint.Sort(diags)

	if rec.Enabled() {
		c := lint.Count(diags)
		rec.Count("lint.diags.error", int64(c.Errors))
		rec.Count("lint.diags.warning", int64(c.Warnings))
		rec.Count("lint.diags.info", int64(c.Infos))
	}
	return diags, nil
}
