package pipeline

import (
	"encoding/json"
	"sort"
)

// MetricsSchema identifies the JSON layout of the metrics document; bump on
// incompatible changes so BENCH_*.json trajectory tooling can detect them.
const MetricsSchema = "irr-metrics/1"

// Metrics is the machine-readable metrics document of one compilation:
// per-phase durations, the analysis counters, and the per-loop verdicts.
// Emitted by `irrc -metrics` and `irrbench -metrics`.
type Metrics struct {
	Schema string `json:"schema"`
	LoC    int    `json:"loc"`
	// CompileNs and PropertyNs are wall-clock nanoseconds.
	CompileNs  int64         `json:"compile_ns"`
	PropertyNs int64         `json:"property_ns"`
	Phases     []PhaseMetric `json:"phases"`
	// Counters holds the property.Stats counters (property.queries,
	// property.nodes_visited, property.loop_summaries,
	// property.gather_hits, property.pattern_hits, and the query-cache
	// triple property.cache_hits / cache_misses / cache_invalidations)
	// plus any recorder counters (e.g. machine.loop.* simulated cycles
	// after a run).
	Counters     map[string]int64 `json:"counters"`
	Loops        []LoopMetric     `json:"loops"`
	Interchanged int              `json:"interchanged,omitempty"`
	// Events is the total number of telemetry events emitted over the
	// compilation (0 when telemetry was off). When it exceeds the recorder's
	// ring capacity, only the newest events survive; EventsDropped counts the
	// overwritten remainder.
	Events        int `json:"events,omitempty"`
	EventsDropped int `json:"events_dropped,omitempty"`
	// Histograms are the latency distributions the recorder collected
	// (per-phase, per-query-kind, whole-compile), with derived quantiles.
	Histograms []HistogramMetric `json:"histograms,omitempty"`
}

// PhaseMetric is one phase's duration in nanoseconds.
type PhaseMetric struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// HistogramMetric is one latency histogram with derived quantiles (all
// nanoseconds; quantiles are fixed-bucket linear-interpolation estimates).
type HistogramMetric struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	SumNs int64  `json:"sum_ns"`
	P50Ns int64  `json:"p50_ns"`
	P90Ns int64  `json:"p90_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// LoopMetric is one loop's parallelization verdict.
type LoopMetric struct {
	Name       string            `json:"name"`
	Parallel   bool              `json:"parallel"`
	Blockers   []string          `json:"blockers,omitempty"`
	Private    []string          `json:"private,omitempty"`
	Reductions []string          `json:"reductions,omitempty"`
	Tests      map[string]string `json:"tests,omitempty"`
	Properties []string          `json:"properties,omitempty"`
}

// Metrics assembles the metrics document. It works with telemetry off (the
// phase breakdown and property counters are always collected); recorder
// counters are merged in when a recorder was attached.
func (r *Result) Metrics() *Metrics {
	m := &Metrics{
		Schema:       MetricsSchema,
		LoC:          r.LoC,
		CompileNs:    int64(r.CompileTime),
		PropertyNs:   int64(r.PropertyTime),
		Counters:     map[string]int64{},
		Interchanged: r.Interchanged,
	}
	for _, ph := range r.Phases {
		m.Phases = append(m.Phases, PhaseMetric{Name: ph.Name, Ns: int64(ph.Duration)})
	}
	st := r.PropertyStats
	m.Counters["property.queries"] = int64(st.Queries)
	m.Counters["property.nodes_visited"] = int64(st.NodesVisited)
	m.Counters["property.loop_summaries"] = int64(st.LoopSummaries)
	m.Counters["property.gather_hits"] = int64(st.GatherHits)
	m.Counters["property.pattern_hits"] = int64(st.PatternHits)
	m.Counters["property.cache_hits"] = int64(st.CacheHits)
	m.Counters["property.cache_misses"] = int64(st.CacheMisses)
	m.Counters["property.cache_invalidations"] = int64(st.CacheInvalidations)
	m.Counters["property.shared_hits"] = int64(st.SharedHits)
	m.Counters["property.shared_misses"] = int64(st.SharedMisses)
	m.Counters["property.derived.monotonic"] = int64(st.DerivedMonotonic)
	m.Counters["property.derived.injective"] = int64(st.DerivedInjective)
	m.Counters["property.derived.distance"] = int64(st.DerivedDistance)
	m.Counters["property.derived.failed"] = int64(st.DerivedFailed)
	for k, v := range r.Recorder.Counters() {
		m.Counters[k] = v
	}
	if r.Recorder.Enabled() {
		emitted, dropped, _ := r.Recorder.EventStats()
		m.Events = int(emitted)
		m.EventsDropped = int(dropped)
		for _, h := range r.Recorder.Histograms() {
			m.Histograms = append(m.Histograms, HistogramMetric{
				Name:  h.Name,
				Count: h.Count,
				SumNs: h.SumNs,
				P50Ns: h.P50(),
				P90Ns: h.P90(),
				P99Ns: h.P99(),
			})
		}
	}
	for _, lr := range r.Reports {
		lm := LoopMetric{
			Name:       lr.Name,
			Parallel:   lr.Parallel,
			Blockers:   lr.Blockers,
			Private:    lr.Private,
			Properties: lr.Properties,
		}
		for _, red := range lr.Reductions {
			lm.Reductions = append(lm.Reductions, red.Var)
		}
		if len(lr.Tests) > 0 {
			lm.Tests = map[string]string{}
			for arr, test := range lr.Tests {
				if test != "" {
					lm.Tests[arr] = string(test)
				}
			}
		}
		m.Loops = append(m.Loops, lm)
	}
	sort.Slice(m.Loops, func(i, j int) bool { return m.Loops[i].Name < m.Loops[j].Name })
	return m
}

// SummaryJSON marshals the metrics document, indented. This is the payload
// of `irrc -metrics out.json` and the per-kernel entries of
// `irrbench -metrics`.
func (r *Result) SummaryJSON() ([]byte, error) {
	return json.MarshalIndent(r.Metrics(), "", "  ")
}
