// Package pipeline orchestrates the full compiler: parsing, semantic
// analysis, the Polaris-like transformation passes, and loop
// parallelization, in the phase order of Fig. 15(b) — all program units are
// fully transformed before the analyses run, the reorganization the paper
// introduced to make interprocedural array property analysis possible. The
// original organization of Fig. 15(a), which interleaved transformation and
// analysis per unit and therefore could not look across units, is available
// as an ablation: it restricts the property analysis to one unit.
//
// The pipeline also keeps the books for Table 2: total compilation time and
// the share spent in array property analysis.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/deptest"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/sem"
)

// Organization selects the phase ordering of Fig. 15.
type Organization int

// Organizations.
const (
	// Reorganized is Fig. 15(b): all units transformed first, then the
	// interprocedural analyses.
	Reorganized Organization = iota
	// Original is Fig. 15(a): per-unit interleaving, which limits the
	// property analysis to a single unit.
	Original
)

func (o Organization) String() string {
	if o == Original {
		return "fig15a"
	}
	return "fig15b"
}

// PhaseTime is one pipeline phase's wall-clock duration.
type PhaseTime struct {
	Name     string
	Duration time.Duration
}

// Result is a finished compilation.
type Result struct {
	Program *lang.Program
	Info    *sem.Info
	Mod     *dataflow.ModInfo
	Reports []*parallel.LoopReport

	// Diags are the lint and audit findings (only with Options.Lint),
	// sorted by span then code.
	Diags []lint.Diag

	// LoC is the number of non-blank source lines.
	LoC int
	// CompileTime is the wall-clock duration of the whole compilation.
	CompileTime time.Duration
	// PropertyTime is the share spent in array property analysis.
	PropertyTime time.Duration
	// Phases is the per-phase time breakdown, in execution order: parse,
	// sem, inline, ipcp, one entry per scalar pass round, interchange
	// (when enabled), reduction and parallelize.
	Phases []PhaseTime
	// PropertyStats are the analysis counters.
	PropertyStats property.Stats
	// InternStats are the expression-interner counters, summed over the
	// compilation's interners (zero with NoExprIntern).
	InternStats expr.InternStats
	// Interchanged counts loop nests swapped by the optional interchange
	// pass.
	Interchanged int
	// Recorder is the telemetry recorder the compilation ran with (nil
	// when telemetry was off). Its event stream drives Explain and the
	// trace dump.
	Recorder *obs.Recorder

	parallelizer *parallel.Parallelizer
}

// ParallelLoops returns the reports of loops that were parallelized.
func (r *Result) ParallelLoops() []*parallel.LoopReport {
	var out []*parallel.LoopReport
	for _, lr := range r.Reports {
		if lr.Parallel {
			out = append(out, lr)
		}
	}
	return out
}

// Options configures optional pipeline features beyond the mode and phase
// organization.
type Options struct {
	// Interchange enables the loop-interchange pass ([22]): legal,
	// locality-improving perfect nests are swapped after the scalar
	// transformations.
	Interchange bool
	// Recorder, when non-nil, collects telemetry: one span per phase, one
	// span per analyzed loop, one event per property query propagation
	// step, and the dependence-test verdicts. Nil runs with telemetry off
	// at no measurable cost.
	Recorder *obs.Recorder
	// Jobs bounds the worker pool used for the per-unit build phases (the
	// HCG construction here; the per-input fan-out in CompileBatch). 0 or
	// negative means GOMAXPROCS. The phase ordering of Fig. 15(b) is
	// preserved: every unit is fully built before the interprocedural
	// analyses start, and results are merged in program order, so the
	// output is identical for every Jobs value.
	Jobs int
	// NoPropertyCache disables the property-query memo table (for
	// measuring its effect; the verdicts are identical either way).
	NoPropertyCache bool
	// Shared, when non-nil, attaches the cross-compilation memo layer:
	// expressions interned and property verdicts proved by one compilation
	// serve every other compilation with the same program identity
	// (source + analysis-relevant options). Batches attach one
	// automatically; servers share one across requests. Verdicts are
	// identical with or without it.
	Shared *SharedAnalysisCache
	// NoSharedCache keeps this compilation (and, on a batch, every item)
	// on private per-compilation tables even when Shared is available —
	// the ablation measuring what cross-compilation sharing buys.
	NoSharedCache bool
	// NoExprIntern disables expression hash-consing (the ablation proving
	// interning changes performance, never output: results are byte-identical
	// either way).
	NoExprIntern bool
	// NoRecurrence disables the definition-site recurrence derivation and
	// the recurrence-window dependence test (`-no-recurrence`) — the
	// ablation showing which loops only parallelize because index-array
	// properties were proven from the loops that fill them. Analysis-
	// relevant: it changes verdicts, so it scopes the shared caches.
	NoRecurrence bool
	// Limits bounds the resources one compilation may consume; the zero
	// value is unlimited. Violations surface as comperr.ErrResourceLimit.
	Limits Limits
	// Lint runs the diagnostics phase after parallelization: source lints
	// over a fresh parse plus the verdict audit (see internal/lint). The
	// findings land in Result.Diags; they never fail the compilation.
	Lint bool
}

// Limits bounds one compilation. Zero fields are unlimited; exceeding a
// bound aborts the compilation with a comperr.ErrResourceLimit-classified
// error instead of running unbounded.
type Limits struct {
	// MaxQuerySteps caps the total number of query-propagation node visits
	// of the property analysis across the whole compilation — the work
	// metric of Table 2 (Stats.NodesVisited).
	MaxQuerySteps int
	// MaxSourceBytes rejects larger source texts before parsing.
	MaxSourceBytes int
}

// Compile runs the full pipeline on source text.
func Compile(src string, mode parallel.Mode, org Organization) (*Result, error) {
	return CompileOpts(src, mode, org, Options{})
}

// CompileOpts is Compile with optional features.
func CompileOpts(src string, mode parallel.Mode, org Organization, opts Options) (*Result, error) {
	return CompileContext(context.Background(), src, mode, org, opts)
}

// CompileContext is CompileOpts under a context: the pipeline polls ctx at
// every phase boundary, inside the query-propagation loop of the property
// analysis, inside the §2 bounded depth-first searches and in the HCG
// worker pool, so a fired deadline or a client disconnect aborts
// mid-analysis. The returned error is typed (comperr): parse failures wrap
// comperr.ErrParse, semantic/pass failures comperr.ErrAnalysis, exceeded
// Limits comperr.ErrResourceLimit, and cancellation comperr.ErrCanceled
// (which also wraps the context error). The checkpoints only read, so an
// uncancelled compilation is byte-identical to one without a context.
func CompileContext(ctx context.Context, src string, mode parallel.Mode, org Organization, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Limits.MaxSourceBytes > 0 && len(src) > opts.Limits.MaxSourceBytes {
		return nil, comperr.Limitf("source is %d bytes (limit %d)", len(src), opts.Limits.MaxSourceBytes)
	}
	guard := comperr.NewGuard(ctx, opts.Limits.MaxQuerySteps)
	res, err := compile(ctx, guard, src, mode, org, opts)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// compile is the pipeline body. Fired checkpoints unwind it with a
// comperr.Abort panic; the deferred RecoverAbort converts that into the
// typed error — the single place cancellation and resource-limit aborts
// rejoin the ordinary error path.
func compile(ctx context.Context, guard *comperr.Guard, src string, mode parallel.Mode, org Organization, opts Options) (_ *Result, err error) {
	defer comperr.RecoverAbort(&err)
	start := time.Now()
	rec := opts.Recorder
	res := &Result{LoC: countLoC(src), Recorder: rec}

	// Cross-compilation sharing: scope the shared tables by program
	// identity, computed over the pristine source before any pass mutates
	// the program. Debug telemetry opts out — a replayed verdict would
	// skip the propagation steps the event stream promises to show.
	shared := opts.Shared
	if opts.NoSharedCache || rec.DebugEnabled() {
		shared = nil
	}
	var scope string
	if shared != nil {
		scope = programKey(src, mode, org, opts)
	}

	// phase times a pipeline phase into the Result breakdown and, with
	// telemetry on, opens a matching span. Opening a phase is also a
	// cancellation barrier: a fired deadline never starts the next phase.
	phase := func(name string) func() {
		guard.Barrier()
		sp := rec.StartSpan("phase", obs.F("name", name))
		t0 := time.Now()
		return func() {
			d := time.Since(t0)
			res.Phases = append(res.Phases, PhaseTime{Name: name, Duration: d})
			rec.Observe("phase.duration:phase="+name, d)
			sp.End()
		}
	}

	end := phase("parse")
	prog, err := lang.Parse(src)
	end()
	if err != nil {
		return nil, comperr.Wrap(comperr.ErrParse, fmt.Errorf("parse: %w", err))
	}
	end = phase("sem")
	info, err := sem.Check(prog)
	if err != nil {
		end()
		return nil, comperr.Wrap(comperr.ErrAnalysis, fmt.Errorf("semantic analysis: %w", err))
	}
	mod := dataflow.ComputeMod(info)
	end()

	recheck := func() error {
		info, err = sem.Check(prog)
		if err != nil {
			return comperr.Wrap(comperr.ErrAnalysis, fmt.Errorf("internal: pass broke the program: %w", err))
		}
		mod = dataflow.ComputeMod(info)
		return nil
	}

	// Inlining and interprocedural constant propagation (both phase
	// orders run these first, as in Fig. 15).
	end = phase("inline")
	if passes.Inline(prog) {
		if err := recheck(); err != nil {
			end()
			return nil, err
		}
	}
	end()
	end = phase("ipcp")
	if passes.PropagateGlobalConstants(prog, info, mod) {
		if err := recheck(); err != nil {
			end()
			return nil, err
		}
	}
	end()

	// Program normalization and scalar transformations, to a fixed point
	// (bounded).
	for round := 0; round < 3; round++ {
		end = phase(fmt.Sprintf("scalar-%d", round+1))
		changed, err := scalarRound(prog, &info, &mod, recheck)
		end()
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}

	// Optional loop interchange (legality via the same dependence tests;
	// Full mode supplies property-based evidence too). Its property
	// analysis is separate from the parallelizer's — interchange mutates
	// the program, so its memo entries must not outlive the phase — but
	// its counters are folded into the Result below.
	interchanged := 0
	var icStats property.Stats
	var icIntern expr.InternStats
	if opts.Interchange {
		end = phase("interchange")
		var prop *property.Analysis
		if mode == parallel.Full {
			ichp, err := cfg.BuildHCGCtx(ctx, prog, opts.Jobs)
			if err != nil {
				end()
				return nil, err
			}
			if opts.NoExprIntern {
				ichp.In = nil
			}
			prop = property.New(info, ichp, mod)
			prop.Rec = rec
			prop.NoCache = opts.NoPropertyCache
			prop.NoRecurrence = opts.NoRecurrence
			prop.Guard = guard
		}
		dep := deptest.New(info, mod, prop)
		dep.Rec = rec
		interchanged = passes.InterchangeLoops(prog, info, mod, dep)
		if interchanged > 0 {
			if err := recheck(); err != nil {
				end()
				return nil, err
			}
		}
		if prop != nil {
			icStats = prop.Stats
			icIntern = prop.Interner().Stats()
		}
		end()
	}

	// Reduction recognition, then the HCG build for every unit — the last
	// per-unit phase, and the Fig. 15(b) barrier: past this point the
	// analyses are interprocedural. The per-unit graphs build on the
	// worker pool; merging is deterministic (program order).
	end = phase("reduction")
	passes.RecognizeReductions(prog, info, mod)
	end()
	end = phase("hcg")
	var hp *cfg.HProgram
	if mode == parallel.Full {
		hp, err = cfg.BuildHCGCtx(ctx, prog, opts.Jobs)
		if err != nil {
			end()
			return nil, err
		}
		switch {
		case opts.NoExprIntern:
			hp.In = nil
		case shared != nil:
			// Back the compilation's interner with the process-wide
			// sharded table: first sightings adopt the representative an
			// identical compilation already installed.
			hp.In = shared.In.Interner(scope)
		}
	}
	end()

	// Parallelization (privatization + data dependence tests, both driven
	// by the parallelizer).
	end = phase("parallelize")
	pz := parallel.NewWithHCG(info, mod, mode, hp)
	pz.SetRecorder(rec)
	pz.SetGuard(guard)
	if pz.Property() != nil {
		pz.Property().NoCache = opts.NoPropertyCache
		pz.Property().NoRecurrence = opts.NoRecurrence
		if org == Original {
			pz.Property().Intraprocedural = true
		}
		if shared != nil && !opts.NoPropertyCache {
			pz.Property().Shared = shared.Memo
			pz.Property().SharedScope = scope
		}
	}
	reports := pz.Run()
	end()

	var diags []lint.Diag
	if opts.Lint {
		end = phase("lint")
		diags, err = runLint(ctx, guard, rec, opts, src, mode, info, pz, reports)
		end()
		if err != nil {
			return nil, err
		}
	}

	res.Program = prog
	res.Info = info
	res.Mod = mod
	res.Reports = reports
	res.Diags = diags
	res.CompileTime = time.Since(start)
	rec.Observe("compile.duration", res.CompileTime)
	res.parallelizer = pz
	res.Interchanged = interchanged
	res.PropertyStats = *pz.PropertyStats()
	res.PropertyStats.Add(icStats)
	res.PropertyTime = res.PropertyStats.Elapsed
	if hp != nil {
		res.InternStats = hp.In.Stats()
	}
	res.InternStats.Add(icIntern)
	if rec.Enabled() {
		st := res.PropertyStats
		rec.Count("property.queries", int64(st.Queries))
		rec.Count("property.nodes_visited", int64(st.NodesVisited))
		rec.Count("property.loop_summaries", int64(st.LoopSummaries))
		rec.Count("property.gather_hits", int64(st.GatherHits))
		rec.Count("property.pattern_hits", int64(st.PatternHits))
		rec.Count("property.cache_hits", int64(st.CacheHits))
		rec.Count("property.cache_misses", int64(st.CacheMisses))
		rec.Count("property.cache_invalidations", int64(st.CacheInvalidations))
		// Which of several identical in-flight compilations reaches the
		// shared table first is scheduling, not analysis: the shared_*
		// counters — and the work counters (queries, nodes_visited) a
		// shared hit suppresses — may differ across job counts when a
		// batch holds duplicated inputs. Equivalence checks across
		// sharing configurations must exclude them, as they exclude
		// expr.intern.* below.
		rec.Count("property.shared_hits", int64(st.SharedHits))
		rec.Count("property.shared_misses", int64(st.SharedMisses))
		rec.Count("property.derived.monotonic", int64(st.DerivedMonotonic))
		rec.Count("property.derived.injective", int64(st.DerivedInjective))
		rec.Count("property.derived.distance", int64(st.DerivedDistance))
		rec.Count("property.derived.failed", int64(st.DerivedFailed))
		// The expr.intern.* counters differ between the intern-on and
		// intern-off configurations by construction; equivalence checks
		// must exclude them (everything else is identical).
		is := res.InternStats
		rec.Count("expr.intern.hits", is.Hits)
		rec.Count("expr.intern.misses", is.Misses)
		rec.Count("expr.intern.node_hits", is.NodeHits)
		rec.Count("expr.intern.node_misses", is.NodeMisses)
	}
	return res, nil
}

// scalarRound runs one round of the scalar transformation fixed point.
func scalarRound(prog *lang.Program, info **sem.Info, mod **dataflow.ModInfo, recheck func() error) (bool, error) {
	changed := false
	passes.FoldConstants(prog)
	changed = passes.SimplifyControl(prog) || changed
	if err := recheck(); err != nil {
		return changed, err
	}
	changed = passes.SubstituteInductionVariables(prog, *info, *mod) || changed
	if err := recheck(); err != nil {
		return changed, err
	}
	changed = passes.PropagateConstants(prog, *info, *mod) || changed
	if err := recheck(); err != nil {
		return changed, err
	}
	changed = passes.ForwardSubstitute(prog, *info, *mod) || changed
	if err := recheck(); err != nil {
		return changed, err
	}
	changed = passes.EliminateDeadCode(prog, *info) || changed
	if err := recheck(); err != nil {
		return changed, err
	}
	return changed, nil
}

func countLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Summary renders a human-readable compilation report: the header with the
// total and property-analysis times, the per-phase breakdown, and one line
// per analyzed loop.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "compiled %d LoC in %v (property analysis %v, %.1f%%)\n",
		r.LoC, r.CompileTime.Round(time.Microsecond), r.PropertyTime.Round(time.Microsecond),
		100*float64(r.PropertyTime)/float64(max(int64(1), int64(r.CompileTime))))
	if len(r.Phases) > 0 {
		var parts []string
		for _, ph := range r.Phases {
			parts = append(parts, fmt.Sprintf("%s %v", ph.Name, ph.Duration.Round(time.Microsecond)))
		}
		fmt.Fprintf(&sb, "  phases: %s\n", strings.Join(parts, " | "))
	}
	for _, lr := range r.Reports {
		status := "serial  "
		if lr.Parallel {
			status = "PARALLEL"
		}
		fmt.Fprintf(&sb, "  %s %s", status, lr.Name)
		if lr.Parallel {
			if len(lr.Private) > 0 {
				fmt.Fprintf(&sb, " private(%s)", strings.Join(lr.Private, ","))
			}
			if len(lr.Reductions) > 0 {
				var rs []string
				for _, red := range lr.Reductions {
					rs = append(rs, red.Var)
				}
				fmt.Fprintf(&sb, " reduction(%s)", strings.Join(rs, ","))
			}
			arrs := make([]string, 0, len(lr.Tests))
			for arr := range lr.Tests {
				arrs = append(arrs, arr)
			}
			sort.Strings(arrs)
			for _, arr := range arrs {
				if test := lr.Tests[arr]; test != "" {
					fmt.Fprintf(&sb, " %s:%s", arr, test)
				}
			}
		} else {
			fmt.Fprintf(&sb, " [%s]", strings.Join(lr.Blockers, "; "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
