package pipeline

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/parallel"
	"repro/internal/sem"
)

func TestCompileAllKernelsAllModesAllOrgs(t *testing.T) {
	for _, k := range kernels.All(kernels.Small) {
		for _, mode := range []parallel.Mode{parallel.Full, parallel.NoIAA, parallel.Baseline} {
			for _, org := range []Organization{Reorganized, Original} {
				res, err := Compile(k.Source, mode, org)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", k.Name, mode, org, err)
				}
				if res.LoC == 0 || res.CompileTime == 0 {
					t.Errorf("%s: missing accounting", k.Name)
				}
				// The transformed program must still be semantically valid.
				if _, err := sem.Check(res.Program); err != nil {
					t.Errorf("%s/%v/%v: transformed program invalid: %v", k.Name, mode, org, err)
				}
			}
		}
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	_, err := Compile("program p\n x = \nend\n", parallel.Full, Reorganized)
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("expected parse error, got %v", err)
	}
}

func TestSemErrorSurfaces(t *testing.T) {
	_, err := Compile("program p\n x = 1\nend\n", parallel.Full, Reorganized)
	if err == nil || !strings.Contains(err.Error(), "semantic") {
		t.Fatalf("expected semantic error, got %v", err)
	}
}

func TestSummaryMentionsLoops(t *testing.T) {
	src := `
program p
  param n = 16
  real a(n)
  integer i
  do i = 1, n
    a(i) = real(i)
  end do
end
`
	res, err := Compile(src, parallel.Full, Reorganized)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if !strings.Contains(sum, "PARALLEL") || !strings.Contains(sum, "do_i") {
		t.Errorf("summary: %s", sum)
	}
	if len(res.ParallelLoops()) != 1 {
		t.Errorf("parallel loops: %d", len(res.ParallelLoops()))
	}
}

func TestPipelineIsIdempotentOnFixpoint(t *testing.T) {
	// Compiling the formatted output of a compile must succeed and find
	// the same parallel loops.
	k, _ := kernels.ByName("p3m", kernels.Small)
	first, err := Compile(k.Source, parallel.Full, Reorganized)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the !parallel annotations the printer adds.
	var clean []string
	for _, line := range strings.Split(lang.Format(first.Program), "\n") {
		if strings.Contains(strings.TrimSpace(line), "!parallel") {
			continue
		}
		clean = append(clean, line)
	}
	second, err := Compile(strings.Join(clean, "\n"), parallel.Full, Reorganized)
	if err != nil {
		t.Fatalf("recompile of transformed output: %v", err)
	}
	if len(first.ParallelLoops()) != len(second.ParallelLoops()) {
		t.Errorf("parallel loop count changed: %d vs %d",
			len(first.ParallelLoops()), len(second.ParallelLoops()))
	}
}

func TestOrganizationString(t *testing.T) {
	if Reorganized.String() != "fig15b" || Original.String() != "fig15a" {
		t.Error("organization names")
	}
}

func TestPropertyTimeAccounted(t *testing.T) {
	k, _ := kernels.ByName("dyfesm", kernels.Small)
	res, err := Compile(k.Source, parallel.Full, Reorganized)
	if err != nil {
		t.Fatal(err)
	}
	if res.PropertyStats.Queries == 0 {
		t.Error("dyfesm should issue property queries")
	}
	if res.PropertyTime <= 0 {
		t.Error("property time not accounted")
	}
	if res.PropertyTime > res.CompileTime {
		t.Error("property time exceeds total compile time")
	}
}

func TestInterchangeOption(t *testing.T) {
	src := `
program p
  param n = 16
  real m(n, n)
  integer i, j
  do i = 1, n
    do j = 1, n
      m(i, j) = real(i + j)
    end do
  end do
end
`
	plain, err := Compile(src, parallel.Full, Reorganized)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Interchanged != 0 {
		t.Error("interchange ran without being requested")
	}
	opt, err := CompileOpts(src, parallel.Full, Reorganized, Options{Interchange: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Interchanged != 1 {
		t.Errorf("interchanged = %d, want 1", opt.Interchanged)
	}
	if _, err := sem.Check(opt.Program); err != nil {
		t.Fatalf("interchange broke the program: %v", err)
	}
}
