package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/core/property"
	"repro/internal/expr"
	"repro/internal/parallel"
)

// SharedAnalysisCache is the cross-compilation memo layer: a sharded
// expression interner plus a sharded property-verdict table, both safe for
// concurrent use by many in-flight compilations. Batches create one
// automatically (see CompileBatchContext); long-lived servers create one per
// process and hand it to every request through Options.Shared, so a verdict
// proved for one request serves every later identical request.
//
// Sharing is keyed by program identity (programKey): only compilations of
// byte-identical source under identical analysis-relevant options ever see
// each other's entries. Within such a scope the analyses are deterministic,
// so a replayed entry is exactly what the reader would have computed —
// sharing changes time, never output. The interchange phase, which mutates
// the program mid-compilation, deliberately stays on private tables.
type SharedAnalysisCache struct {
	// In dedupes canonical expressions across compilations.
	In *expr.SharedInterner
	// Memo replays property-query verdicts across compilations.
	Memo *property.SharedMemo
}

// NewSharedAnalysisCache builds an empty cache ready for concurrent use.
func NewSharedAnalysisCache() *SharedAnalysisCache {
	return &SharedAnalysisCache{In: expr.NewSharedInterner(), Memo: property.NewSharedMemo()}
}

// SharedCacheStats snapshots both tables' counters.
type SharedCacheStats struct {
	Intern expr.SharedInternStats   `json:"intern"`
	Memo   property.SharedMemoStats `json:"memo"`
}

// Stats snapshots the cache counters (zero for a nil cache).
func (c *SharedAnalysisCache) Stats() SharedCacheStats {
	if c == nil {
		return SharedCacheStats{}
	}
	return SharedCacheStats{Intern: c.In.Stats(), Memo: c.Memo.Stats()}
}

// programKey fingerprints one compilation for the shared tables: the source
// text plus every option that can steer the analyses (mode, phase
// organization, interchange, interning, limits). Two compilations with equal
// keys run the identical phase sequence over the identical program, so their
// interned expressions and property verdicts are interchangeable.
// Scheduling-only options (Jobs, Recorder, Lint) are deliberately excluded —
// they cannot change what the analyses compute.
func programKey(src string, mode parallel.Mode, org Organization, opts Options) string {
	h := sha256.New()
	io.WriteString(h, src)
	fmt.Fprintf(h, "\x00%d\x00%d\x00%t\x00%t\x00%t\x00%t\x00%d\x00%d",
		mode, org, opts.Interchange, opts.NoExprIntern, opts.NoPropertyCache,
		opts.NoRecurrence,
		opts.Limits.MaxQuerySteps, opts.Limits.MaxSourceBytes)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
