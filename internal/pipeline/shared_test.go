package pipeline

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// dupInputs builds a batch of n byte-identical copies of one kernel — the
// workload the shared cache exists for.
func dupInputs(t *testing.T, n int) []BatchInput {
	t.Helper()
	k, err := kernels.ByName("trfd", kernels.Small)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]BatchInput, n)
	for i := range ins {
		ins[i] = BatchInput{Name: k.Name, Src: k.Source}
	}
	return ins
}

// verdictLog renders everything the shared cache must not change: per-item
// summaries (durations normalized) and the decision log.
func verdictLog(br *BatchResult) string {
	return durations.ReplaceAllString(br.Summary(), "T") + "\n" + br.Explain()
}

// TestSharedCacheAblationIdenticalOutput is the sharing acceptance check:
// the same batch with the shared cache on and off (and the distinct-kernel
// batch, where sharing cannot fire) must produce byte-identical summaries,
// decision logs and loop verdicts.
func TestSharedCacheAblationIdenticalOutput(t *testing.T) {
	for _, tc := range []struct {
		name string
		ins  []BatchInput
	}{
		{"duplicated", dupInputs(t, 4)},
		{"distinct", batchInputs()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			on := CompileBatch(tc.ins, parallel.Full, Reorganized, Options{Jobs: 1, Recorder: obs.New()})
			off := CompileBatch(tc.ins, parallel.Full, Reorganized, Options{Jobs: 1, Recorder: obs.New(), NoSharedCache: true})
			if err := on.Err(); err != nil {
				t.Fatal(err)
			}
			if err := off.Err(); err != nil {
				t.Fatal(err)
			}
			if got, want := verdictLog(on), verdictLog(off); got != want {
				t.Errorf("output differs with sharing on vs off:\n--- shared\n%s\n--- private\n%s", got, want)
			}
		})
	}
}

// TestSharedCacheServesDuplicates checks a duplicated batch actually shares:
// later items replay the first item's verdicts instead of re-proving, and
// the shared interner converges duplicates onto resident representatives.
func TestSharedCacheServesDuplicates(t *testing.T) {
	shared := NewSharedAnalysisCache()
	br := CompileBatch(dupInputs(t, 4), parallel.Full, Reorganized, Options{Jobs: 1, Shared: shared})
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	st := br.Stats()
	if st.SharedHits == 0 {
		t.Error("duplicated batch earned no shared property hits")
	}
	// Serially, items 2..4 must replay every verdict item 1 proved: the
	// whole batch performs exactly one item's worth of propagations.
	solo := CompileBatch(dupInputs(t, 1), parallel.Full, Reorganized, Options{Jobs: 1, NoSharedCache: true})
	if err := solo.Err(); err != nil {
		t.Fatal(err)
	}
	if want := solo.Stats().Queries; st.Queries != want {
		t.Errorf("duplicated batch ran %d propagations, want %d (one item's worth)", st.Queries, want)
	}
	cs := shared.Stats()
	if cs.Intern.Hits == 0 {
		t.Error("duplicated batch earned no shared interner hits")
	}
	if cs.Memo.Hits == 0 || cs.Memo.Entries == 0 {
		t.Errorf("shared memo hits=%d entries=%d, want both > 0", cs.Memo.Hits, cs.Memo.Entries)
	}
}

// TestSharedCacheDuplicatesDeterministicAcrossJobs compiles a duplicated
// batch at -jobs 1 and -jobs 8 with sharing on: every scheduling-independent
// output must match. The property work counters (queries, nodes_visited,
// shared hits/misses) are legitimately racy here — which duplicate proves
// and which replays depends on arrival order — and are excluded, exactly as
// documented on CompileBatch. Run with -race.
func TestSharedCacheDuplicatesDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) *BatchResult {
		br := CompileBatch(dupInputs(t, 6), parallel.Full, Reorganized, Options{Jobs: jobs, Recorder: obs.New()})
		if err := br.Err(); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return br
	}
	b1, b8 := run(1), run(8)
	if got, want := verdictLog(b8), verdictLog(b1); got != want {
		t.Errorf("verdicts differ between -jobs 1 and -jobs 8 with sharing on:\n--- jobs=1\n%s\n--- jobs=8\n%s", want, got)
	}
	racy := map[string]bool{
		"property.queries":       true,
		"property.nodes_visited": true,
		"property.shared_hits":   true,
		"property.shared_misses": true,
		"property.cache_misses":  false,
	}
	c1, c8 := b1.Counters(), b8.Counters()
	for k, v1 := range c1 {
		if racy[k] {
			continue
		}
		if v8 := c8[k]; v8 != v1 {
			t.Errorf("counter %s differs: jobs=1 %d, jobs=8 %d", k, v1, v8)
		}
	}
}

// TestSharedCacheDebugTelemetryOptsOut checks a debug-telemetry compilation
// never consults the shared tables: its event stream must contain the full
// propagation trace, which a replayed verdict would skip.
func TestSharedCacheDebugTelemetryOptsOut(t *testing.T) {
	shared := NewSharedAnalysisCache()
	// Warm the cache without debug...
	warm := CompileBatch(dupInputs(t, 1), parallel.Full, Reorganized, Options{Jobs: 1, Shared: shared})
	if err := warm.Err(); err != nil {
		t.Fatal(err)
	}
	// ...then compile the identical program with debug telemetry.
	k := dupInputs(t, 1)[0]
	res, err := CompileOpts(k.Src, parallel.Full, Reorganized, Options{Recorder: obs.NewDebug(), Shared: shared})
	if err != nil {
		t.Fatal(err)
	}
	if res.PropertyStats.SharedHits != 0 || res.PropertyStats.SharedMisses != 0 {
		t.Errorf("debug compilation touched the shared tables (hits=%d misses=%d)",
			res.PropertyStats.SharedHits, res.PropertyStats.SharedMisses)
	}
	if res.PropertyStats.Queries == 0 {
		t.Error("debug compilation should have run its own propagations")
	}
}
