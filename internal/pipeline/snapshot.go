package pipeline

import (
	"repro/internal/lint"
	"repro/internal/parallel"
)

// Snapshot is an immutable, cheaply shareable view of a finished
// compilation: the rendered summary, the frozen irr-metrics/1 document,
// the diagnostics and the per-loop reports, captured once at snapshot
// time. A snapshot can be shared across goroutines and across requests —
// the cross-request cache (internal/rescache via irrd) stores exactly
// one snapshot per distinct compilation.
//
// Immutability contract: everything reachable from a snapshot is frozen.
// The accessor methods return defensive copies of the mutable slice
// types; the underlying compilation (program, semantic info, reports) is
// shared by every Clone and must be treated as read-only — the pipeline
// never mutates a program after compile returns, and the interpreter and
// the bounds-check analysis only read it, so concurrent Clones may run
// simultaneously. Per-request state (the telemetry Recorder, the lazily
// computed bounds-check result at the public-API layer) is deliberately
// NOT part of the snapshot: each Clone starts with a nil Recorder.
type Snapshot struct {
	summary     string
	metricsJSON []byte
	diags       []lint.Diag
	reports     []*parallel.LoopReport
	loc         int
	res         *Result
}

// Snapshot freezes the result. The metrics document is rendered now, so a
// later caller sees the compilation exactly as it finished even if the
// recorder keeps absorbing run-phase counters.
func (r *Result) Snapshot() (*Snapshot, error) {
	metrics, err := r.SummaryJSON()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		summary:     r.Summary(),
		metricsJSON: metrics,
		diags:       append([]lint.Diag(nil), r.Diags...),
		reports:     append([]*parallel.LoopReport(nil), r.Reports...),
		loc:         r.LoC,
		res:         r,
	}, nil
}

// Summary returns the frozen human-readable compilation report.
func (s *Snapshot) Summary() string { return s.summary }

// MetricsJSON returns a copy of the frozen irr-metrics/1 document.
func (s *Snapshot) MetricsJSON() []byte {
	return append([]byte(nil), s.metricsJSON...)
}

// Diags returns a copy of the frozen diagnostics.
func (s *Snapshot) Diags() []lint.Diag {
	if s.diags == nil {
		return nil
	}
	return append([]lint.Diag(nil), s.diags...)
}

// Reports returns a copy of the frozen per-loop report list (the reports
// themselves are shared and read-only).
func (s *Snapshot) Reports() []*parallel.LoopReport {
	return append([]*parallel.LoopReport(nil), s.reports...)
}

// Cost estimates the bytes a cached snapshot retains: the frozen strings
// and documents it holds directly, plus a per-line charge for the shared
// program, semantic info and analysis structures kept alive through res.
// It is an estimate — the rescache byte budget is approximate by design.
func (s *Snapshot) Cost() int64 {
	c := int64(len(s.summary)) + int64(len(s.metricsJSON))
	c += int64(len(s.diags)) * 512
	c += int64(len(s.reports)) * 256
	c += int64(s.loc) * 1024 // AST + sem.Info + HCG + reports, per source line
	return c + 16<<10        // fixed structural overhead
}

// Clone returns a fresh per-caller Result over the snapshot's immutable
// compilation. The clone shares the program, semantic info, mod info and
// reports (read-only); its Recorder is nil — a caller that wants run
// telemetry attaches its own recorder before Run/RunContext, keeping
// per-request event streams out of the shared snapshot.
func (s *Snapshot) Clone() *Result {
	c := *s.res
	c.Recorder = nil
	return &c
}
