package pipeline

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func snapshotOf(t *testing.T, opts Options) *Snapshot {
	t.Helper()
	k, err := kernels.ByName("trfd", kernels.Small)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileOpts(k.Source, parallel.Full, Reorganized, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSnapshotImmutable: mutating what the accessors return must not leak
// back into the snapshot — that is the whole point of caching one.
func TestSnapshotImmutable(t *testing.T) {
	snap := snapshotOf(t, Options{Recorder: obs.New(), Lint: true})
	metrics := snap.MetricsJSON()
	if len(metrics) == 0 {
		t.Fatal("empty metrics document")
	}
	for i := range metrics {
		metrics[i] = 'X'
	}
	if again := snap.MetricsJSON(); bytes.Contains(again, []byte("XXX")) {
		t.Error("mutating MetricsJSON() leaked into the snapshot")
	}

	diags := snap.Diags()
	reports := snap.Reports()
	if len(reports) == 0 {
		t.Fatal("trfd produced no loop reports")
	}
	if len(diags) > 0 {
		diags[0] = diags[len(diags)-1]
	}
	reports[0] = nil
	if got := snap.Reports(); got[0] == nil {
		t.Error("mutating Reports() leaked into the snapshot")
	}
	if snap.Cost() <= 16<<10 {
		t.Errorf("Cost() = %d, want more than the fixed overhead", snap.Cost())
	}
}

// TestSnapshotCloneIndependence: clones share the read-only compilation
// but never a Recorder, and the snapshot's frozen document is unaffected
// by whatever a clone's recorder later absorbs.
func TestSnapshotCloneIndependence(t *testing.T) {
	snap := snapshotOf(t, Options{Recorder: obs.New()})
	frozen := snap.MetricsJSON()

	a, b := snap.Clone(), snap.Clone()
	if a == b {
		t.Fatal("Clone returned the same *Result twice")
	}
	if a.Recorder != nil || b.Recorder != nil {
		t.Fatal("clone inherited the snapshot's Recorder")
	}
	a.Recorder = obs.New()
	a.Recorder.Count("clone.private", 1)
	if b.Recorder != nil {
		t.Error("recorder attached to one clone is visible on another")
	}
	if !bytes.Equal(frozen, snap.MetricsJSON()) {
		t.Error("snapshot document changed after a clone attached a recorder")
	}
	if a.Program != b.Program {
		t.Error("clones do not share the compiled program")
	}
}

// TestSnapshotConcurrentReaders hits one snapshot's accessors and Clone
// from many goroutines; run with -race. (End-to-end concurrent execution
// of clones is covered at the public-API layer, where Run lives.)
func TestSnapshotConcurrentReaders(t *testing.T) {
	snap := snapshotOf(t, Options{Recorder: obs.New()})
	want := snap.MetricsJSON()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if !bytes.Equal(snap.MetricsJSON(), want) {
					t.Error("MetricsJSON changed under concurrency")
					return
				}
				c := snap.Clone()
				c.Recorder = obs.New()
				_ = snap.Summary()
				_ = snap.Reports()
			}
		}()
	}
	wg.Wait()
}
