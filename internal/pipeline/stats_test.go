package pipeline

import (
	"regexp"
	"testing"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// compileKernel compiles a bundled kernel at Small size, optionally with a
// telemetry recorder.
func compileKernel(t *testing.T, name string, rec *obs.Recorder) *Result {
	t.Helper()
	k, err := kernels.ByName(name, kernels.Small)
	if err != nil {
		t.Fatalf("kernel %s: %v", name, err)
	}
	res, err := CompileOpts(k.Source, parallel.Full, Reorganized, Options{Recorder: rec})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return res
}

// TestPropertyStatsCounters asserts the five property.Stats counters are
// live and mutually consistent on the two kernels whose analysis exercises
// all of them: TRFD (pattern-matched closed forms) and P3M (index-gathering
// loop recognition).
func TestPropertyStatsCounters(t *testing.T) {
	for _, tc := range []struct {
		kernel      string
		wantGather  bool
		wantPattern bool
	}{
		{kernel: "trfd", wantPattern: true},
		{kernel: "p3m", wantGather: true},
	} {
		t.Run(tc.kernel, func(t *testing.T) {
			st := compileKernel(t, tc.kernel, nil).PropertyStats
			if st.Queries == 0 {
				t.Fatal("Queries = 0, want > 0")
			}
			if st.NodesVisited == 0 {
				t.Error("NodesVisited = 0, want > 0")
			}
			if st.LoopSummaries == 0 {
				t.Error("LoopSummaries = 0, want > 0")
			}
			if tc.wantGather && st.GatherHits == 0 {
				t.Error("GatherHits = 0, want > 0")
			}
			if tc.wantPattern && st.PatternHits == 0 {
				t.Error("PatternHits = 0, want > 0")
			}
			// Consistency: every query visits at least its seed node unless
			// it was answered without propagation, so the visit count can
			// never trail a fully-propagated query count; and gather/pattern
			// hits happen while answering queries.
			if st.GatherHits > 0 && st.Queries == 0 {
				t.Error("GatherHits > 0 with no queries")
			}
			if st.PatternHits > 0 && st.NodesVisited == 0 {
				t.Error("PatternHits > 0 with no nodes visited")
			}
			if st.Elapsed <= 0 {
				t.Error("Elapsed <= 0, want > 0")
			}
		})
	}
}

// durations matches rendered time.Duration values and timing-derived
// percentages so report text can be compared across runs.
var durations = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s|%)`)

// TestTelemetryDoesNotChangeResults asserts a compilation with the recorder
// enabled reaches byte-identical analysis results — Summary() output and
// property counters — as the disabled-recorder compilation (durations
// normalized; telemetry must observe, never steer).
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	for _, kernel := range []string{"trfd", "p3m"} {
		t.Run(kernel, func(t *testing.T) {
			off := compileKernel(t, kernel, nil)
			on := compileKernel(t, kernel, obs.New())
			offSum := durations.ReplaceAllString(off.Summary(), "DUR")
			onSum := durations.ReplaceAllString(on.Summary(), "DUR")
			if offSum != onSum {
				t.Errorf("Summary differs with telemetry on:\n--- off ---\n%s\n--- on ---\n%s", offSum, onSum)
			}
			offSt, onSt := off.PropertyStats, on.PropertyStats
			if offSt.Queries != onSt.Queries ||
				offSt.NodesVisited != onSt.NodesVisited ||
				offSt.LoopSummaries != onSt.LoopSummaries ||
				offSt.GatherHits != onSt.GatherHits ||
				offSt.PatternHits != onSt.PatternHits {
				t.Errorf("Stats differ with telemetry on: off=%+v on=%+v", offSt, onSt)
			}
			// The recorder mirrors the counters into its counter map.
			for name, want := range map[string]int{
				"property.queries":        onSt.Queries,
				"property.nodes_visited":  onSt.NodesVisited,
				"property.loop_summaries": onSt.LoopSummaries,
				"property.gather_hits":    onSt.GatherHits,
				"property.pattern_hits":   onSt.PatternHits,
			} {
				if got := on.Recorder.Counter(name); got != int64(want) {
					t.Errorf("recorder counter %s = %d, want %d", name, got, want)
				}
			}
		})
	}
}

// TestExplainShowsFailedQueryTrace asserts the decision log replays a failed
// property query as a propagation trace for a loop that stayed serial —
// TRFD's do_r loop, whose ia(i) = i*(i-1)/2 fill defeats the injectivity
// pattern.
func TestExplainShowsFailedQueryTrace(t *testing.T) {
	// The propagation trace and diagnosis replay are Debug-level detail.
	res := compileKernel(t, "trfd", obs.NewDebug())
	out := res.Explain()
	for _, want := range []string{
		"loop trfd/do_r@18: serial",
		"FAILED",
		"[do-header-inside]",
		"diagnose index array ia",
	} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(out) {
			t.Errorf("Explain() missing %q\n%s", want, out)
		}
	}
}

// TestMetricsDocument asserts the metrics JSON carries the phase breakdown
// and all five property counters.
func TestMetricsDocument(t *testing.T) {
	res := compileKernel(t, "trfd", obs.New())
	m := res.Metrics()
	if m.Schema != MetricsSchema {
		t.Errorf("schema = %q, want %q", m.Schema, MetricsSchema)
	}
	phases := map[string]bool{}
	for _, ph := range m.Phases {
		phases[ph.Name] = true
	}
	for _, want := range []string{"parse", "sem", "scalar-1", "parallelize"} {
		if !phases[want] {
			t.Errorf("metrics missing phase %q (have %v)", want, m.Phases)
		}
	}
	for _, want := range []string{
		"property.queries", "property.nodes_visited", "property.loop_summaries",
		"property.gather_hits", "property.pattern_hits",
	} {
		if _, ok := m.Counters[want]; !ok {
			t.Errorf("metrics missing counter %q", want)
		}
	}
	if len(m.Loops) == 0 {
		t.Error("metrics has no loop verdicts")
	}
	if _, err := res.SummaryJSON(); err != nil {
		t.Errorf("SummaryJSON: %v", err)
	}
}
