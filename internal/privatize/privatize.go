// Package privatize implements the array privatization test of the paper's
// evaluation pipeline (§5.1.4): an array can be privatized for a loop when
// its upward-exposed read set in each iteration is empty — every element
// read in an iteration was written earlier in the same iteration.
//
// The baseline test (Tu–Padua style) handles affine accesses by computing
// per-iteration MUST write sections and MAY read sections. It is extended
// exactly as §5.1.4 describes:
//
//   - consecutively-written arrays (§2.2): the write section of a loop that
//     fills x(p), p incrementing from a known entry value C, is [C+1 : p];
//   - array stacks (§2.3): a stack whose pointer is reset at the start of
//     each iteration is privatizable outright;
//   - simple indirect reads x(ind(j)): approximated to x[lo:hi] using the
//     closed-form bounds of the index array from the property analysis.
package privatize

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/core/singleindex"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
	"repro/internal/sem"
)

// Reason names the technique that made an array privatizable.
type Reason string

// Reasons.
const (
	ReasonAffine   Reason = "affine"
	ReasonCW       Reason = "consecutively-written"
	ReasonStack    Reason = "stack"
	ReasonIndirect Reason = "indirect-bounds"
)

// Result is the outcome for one array in one loop.
type Result struct {
	Array   string
	Private bool
	Reason  Reason
	// Properties lists verified index-array properties used, if any.
	Properties []string
	// LiveOut is set when the array may be read after the loop in the
	// same unit; a parallel executor must then copy out the last
	// iteration's private copy.
	LiveOut bool
}

// Analyzer runs the privatization test. Prop may be nil (no irregular
// access analysis: the paper's baseline configuration).
type Analyzer struct {
	Info *sem.Info
	Mod  *dataflow.ModInfo
	Prop *property.Analysis
	// In is the compilation's expression interner, shared with the property
	// analysis (nil disables interning; all uses are nil-safe).
	In     *expr.Interner
	Assume expr.Assumptions
	// DisableSingleIndex turns off the §2 analyses (consecutively-written
	// and stack), leaving only the traditional affine test — the paper's
	// "without irregular access analysis" configuration.
	DisableSingleIndex bool
	// Guard is the cooperative cancellation checkpoint threaded into the
	// §2 bounded depth-first searches; nil is a disabled guard.
	Guard *comperr.Guard

	flat map[*lang.Unit]*cfg.Graph
}

// New builds an Analyzer; prop may be nil.
func New(info *sem.Info, mod *dataflow.ModInfo, prop *property.Analysis) *Analyzer {
	a := &Analyzer{
		Info: info, Mod: mod, Prop: prop,
		Assume: expr.Assumptions{},
		flat:   map[*lang.Unit]*cfg.Graph{},
	}
	if prop != nil {
		a.In = prop.Interner()
	}
	return a
}

func (a *Analyzer) graph(u *lang.Unit) *cfg.Graph {
	g := a.flat[u]
	if g == nil {
		g = cfg.Build(u)
		a.flat[u] = g
	}
	return g
}

// AnalyzeLoop decides privatizability of every array written inside the
// loop. Arrays that are only read need no privatization and get no entry.
func (a *Analyzer) AnalyzeLoop(u *lang.Unit, loop *lang.DoStmt) map[string]*Result {
	results := map[string]*Result{}

	written := a.Mod.StmtsMod(u, loop.Body)
	for _, arr := range written.SortedArrays() {
		results[arr] = &Result{Array: arr, LiveOut: a.liveAfter(u, loop, arr)}
	}

	// Stack pass: the region is the body of this loop (§2.3).
	stacked := map[string]bool{}
	g := a.graph(u)
	if l := g.LoopFor(loop); l != nil && !a.DisableSingleIndex {
		for _, acc := range singleindex.Find(g, l, a.Info, a.Mod) {
			acc.Check = a.Guard.CheckFn()
			if st := singleindex.CheckStack(acc); st != nil && st.ResetFirst {
				if r := results[acc.Array]; r != nil {
					r.Private = true
					r.Reason = ReasonStack
					stacked[acc.Array] = true
				}
			}
		}
	}

	// Upward-exposed read walk over one iteration of the loop.
	w := &walker{
		a: a, unit: u, outer: loop,
		written: section.NewSet(),
		exposed: map[string]bool{},
		skip:    stacked,
		scalars: map[string]*expr.Expr{},
	}
	w.walk(loop.Body, expr.Env{})

	for arr, r := range results {
		if stacked[arr] {
			continue
		}
		if w.failed[arr] || w.outerDep[arr] {
			r.Private = false
			continue
		}
		if !w.exposed[arr] {
			r.Private = true
			r.Reason = w.reason(arr)
			r.Properties = w.props[arr]
		}
	}
	return results
}

// liveAfter reports (syntactically, conservatively) whether privatizing the
// array for this loop could change an observable value: for a local array,
// whether it is read after the loop in its unit; for a global, whether any
// read of it anywhere in the program lies outside the loop body (a read
// before the loop in the same unit matters too — on a later call it would
// observe the previous invocation's data).
func (a *Analyzer) liveAfter(u *lang.Unit, loop *lang.DoStmt, arr string) bool {
	sym := a.Info.LookupIn(u, arr)
	if sym == nil {
		return true
	}
	inLoop := map[lang.Stmt]bool{}
	lang.WalkStmts(loop.Body, func(s lang.Stmt) bool {
		inLoop[s] = true
		return true
	})
	readsOutside := func(unit *lang.Unit, name string) bool {
		found := false
		lang.WalkStmts(unit.Body, func(s lang.Stmt) bool {
			if inLoop[s] {
				return true
			}
			f := dataflow.Facts(s)
			for _, rd := range f.ArrayReads {
				if rd.Array == name {
					// The name must resolve to the same symbol.
					if a.Info.LookupIn(unit, name) == sym {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	if !sym.Global {
		// A local: only reads after the loop in this unit matter (reads
		// before the loop see the zero-initialised fresh locals anyway,
		// but stay conservative and count any outside read).
		return readsOutside(u, arr)
	}
	for _, unit := range a.Info.Program.Units() {
		if readsOutside(unit, arr) {
			return true
		}
	}
	return false
}

// walker performs the per-iteration upward-exposed read computation.
type walker struct {
	a     *Analyzer
	unit  *lang.Unit
	outer *lang.DoStmt

	written  *section.Set    // MUST-written so far in this iteration
	exposed  map[string]bool // arrays with an upward-exposed read
	failed   map[string]bool // arrays with writes we could not summarize
	outerDep map[string]bool // arrays written at outer-var-dependent subscripts
	skip     map[string]bool // arrays handled by the stack pass
	reasons  map[string]Reason
	props    map[string][]string
	// scalars tracks, at the current straight-line level, the last simple
	// invariant assignment to each scalar (used to find a CW index's
	// entry value).
	scalars map[string]*expr.Expr
}

func (w *walker) noteExposed(arr string) {
	if w.exposed == nil {
		w.exposed = map[string]bool{}
	}
	w.exposed[arr] = true
}

func (w *walker) noteFailed(arr string) {
	if w.failed == nil {
		w.failed = map[string]bool{}
	}
	w.failed[arr] = true
}

func (w *walker) noteOuterDependent(arr string) {
	if w.outerDep == nil {
		w.outerDep = map[string]bool{}
	}
	w.outerDep[arr] = true
}

func (w *walker) noteReason(arr string, r Reason, props []string) {
	if w.reasons == nil {
		w.reasons = map[string]Reason{}
	}
	// Keep the most specific reason (later techniques override affine).
	if r != ReasonAffine || w.reasons[arr] == "" {
		if w.reasons[arr] == "" || r != ReasonAffine {
			w.reasons[arr] = r
		}
	}
	if len(props) > 0 {
		if w.props == nil {
			w.props = map[string][]string{}
		}
		w.props[arr] = append(w.props[arr], props...)
	}
}

func (w *walker) reason(arr string) Reason {
	if r, ok := w.reasons[arr]; ok {
		return r
	}
	return ReasonAffine
}

// invalidateScalar drops written sections and cached scalar values that
// depend on a just-modified scalar.
func (w *walker) invalidateScalar(name string) {
	delete(w.scalars, name)
	kept := section.NewSet()
	for _, sec := range w.written.Sections() {
		stale := false
		for _, d := range sec.Dims {
			if (d.Lo != nil && d.Lo.MentionsVar(name)) || (d.Hi != nil && d.Hi.MentionsVar(name)) {
				stale = true
				break
			}
		}
		if !stale {
			kept.AddMust(sec, w.a.Assume)
		}
	}
	w.written = kept
}

// readSection computes a MAY section for one array read under the loop
// environment, or nil when it cannot be bounded (the read is then exposed
// unless the whole array is already written).
func (w *walker) readSection(r dataflow.Ref, env expr.Env) (*section.Section, []string) {
	dims := make([]expr.Range, len(r.Args))
	var props []string
	for i, arg := range r.Args {
		e := w.a.In.FromAST(arg)
		if len(atomArrays(e)) == 0 {
			// Affine-in-scalars subscript: keep the exact symbolic point;
			// checkRead aggregates over the environment when a whole-loop
			// comparison is needed, and the point form is what makes
			// same-iteration read-after-write coverage provable.
			dims[i] = expr.Point(e)
			continue
		}
		// Indirect subscript: try closed-form bounds of the index arrays
		// (§5.1.4: {a(p(i)) | 1<=i<=n} ≈ a[min p : max p]).
		if rg, ps, ok := w.indirectRange(e, env, r.Stmt); ok {
			dims[i] = rg
			props = append(props, ps...)
			continue
		}
		dims[i] = expr.Range{} // unbounded
	}
	return section.NewMulti(r.Array, dims), props
}

// indirectRange bounds a subscript containing index-array atoms by querying
// the bounds property for each atom and substituting.
func (w *walker) indirectRange(e *expr.Expr, env expr.Env, at lang.Stmt) (expr.Range, []string, bool) {
	if w.a.Prop == nil {
		return expr.Range{}, nil, false
	}
	arrays := atomArrays(e)
	if len(arrays) == 0 {
		return expr.Range{}, nil, false
	}
	var props []string
	lo, hi := e, e
	for _, ia := range arrays {
		// Query section: the subscripts used with ia, bounded over env.
		var qlo, qhi *expr.Expr
		for _, arg := range e.ArrayAtoms(ia) {
			rg, ok := expr.Bounds(arg, env, w.a.Assume)
			if !ok || rg.Lo == nil || rg.Hi == nil {
				return expr.Range{}, nil, false
			}
			qlo = minProv(qlo, rg.Lo, w.a.Assume)
			qhi = maxProv(qhi, rg.Hi, w.a.Assume)
		}
		if qlo == nil || qhi == nil {
			return expr.Range{}, nil, false
		}
		iaName := ia
		p, ok := w.a.Prop.VerifyCached(
			func() property.Property { return property.NewBounds(iaName) },
			at, section.New(ia, qlo, qhi))
		prop, isB := p.(*property.Bounds)
		if !ok || !isB || prop.Lo == nil || prop.Hi == nil {
			return expr.Range{}, nil, false
		}
		props = append(props, prop.String())
		for key := range lo.ArrayAtoms(ia) {
			lo = lo.SubstAtom(key, prop.Lo)
		}
		for key := range hi.ArrayAtoms(ia) {
			hi = hi.SubstAtom(key, prop.Hi)
		}
	}
	rlo, ok1 := expr.Bounds(lo, env, w.a.Assume)
	rhi, ok2 := expr.Bounds(hi, env, w.a.Assume)
	if !ok1 || !ok2 {
		return expr.Range{}, nil, false
	}
	return expr.Range{Lo: rlo.Lo, Hi: rhi.Hi}, props, true
}

func atomArrays(e *expr.Expr) []string {
	seen := map[string]bool{}
	var out []string
	lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
		if ar, ok := x.(*lang.ArrayRef); ok && !ar.Intrinsic && !seen[ar.Name] {
			seen[ar.Name] = true
			out = append(out, ar.Name)
		}
		return true
	})
	sort.Strings(out)
	return out
}

func minProv(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return nil
	}
}

func maxProv(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		return nil
	}
}

// checkRead tests whether a read is covered by the MUST-written set; if
// not, the array has an upward-exposed read.
func (w *walker) checkRead(r dataflow.Ref, env expr.Env) {
	if w.skip[r.Array] {
		return
	}
	sec, props := w.readSection(r, env)
	// Try the raw section first (a read right after a write of the same
	// element), then the env-aggregated one (a point read inside an inner
	// loop against a whole-loop write section).
	agg := sec.AggregateMayEnv(env, w.a.Assume)
	for _, cand := range []*section.Section{sec, agg} {
		for _, ws := range w.written.Sections() {
			if ws.Contains(cand, w.a.Assume) {
				if len(props) > 0 {
					w.noteReason(r.Array, ReasonIndirect, props)
				} else {
					w.noteReason(r.Array, ReasonAffine, nil)
				}
				return
			}
		}
	}
	w.noteExposed(r.Array)
}

// writeSection computes a MUST section for one array write: the point
// section of its (symbolic) subscripts. Later MUST aggregation turns point
// writes inside DO loops into dense ranges.
func (w *walker) writeSection(r dataflow.Ref, env expr.Env) *section.Section {
	dims := make([]expr.Range, len(r.Args))
	for i, arg := range r.Args {
		dims[i] = expr.Point(w.a.In.FromAST(arg))
	}
	return section.NewMulti(r.Array, dims)
}

// statement-level entry points ----------------------------------------------

func (w *walker) walk(stmts []lang.Stmt, env expr.Env) {
	for i := 0; i < len(stmts); i++ {
		s := stmts[i]
		switch s := s.(type) {
		case *lang.AssignStmt:
			w.assign(s, env)
		case *lang.IfStmt:
			w.ifStmt(s, env)
		case *lang.DoStmt:
			w.doLoop(s, env)
		case *lang.WhileStmt:
			w.whileLoop(s, env)
		case *lang.CallStmt:
			w.call(s)
		case *lang.PrintStmt:
			f := dataflow.Facts(s)
			for _, r := range f.ArrayReads {
				w.checkRead(r, env)
			}
		case *lang.GotoStmt:
			// Unstructured flow inside the iteration: be conservative
			// about everything written from here on.
			w.conservativeRest(stmts[i:], env)
			return
		}
	}
}

func (w *walker) assign(s *lang.AssignStmt, env expr.Env) {
	f := dataflow.Facts(s)
	for _, r := range f.ArrayReads {
		w.checkRead(r, env)
	}
	for _, wr := range f.ArrayWrites {
		// Writes subscripted by the outer loop variable are disjoint per
		// iteration: they are the dependence test's concern, and
		// privatizing them would lose all but the last iteration's data
		// on copy-out.
		for _, arg := range wr.Args {
			if w.a.In.FromAST(arg).MentionsVar(w.outer.Var.Name) {
				w.noteOuterDependent(wr.Array)
			}
		}
		if w.skip[wr.Array] {
			continue
		}
		sec := w.writeSection(wr, env)
		if sec == nil {
			w.noteFailed(wr.Array)
			continue
		}
		// Sections may mention inner loop variables; each enclosing
		// doLoop level MUST-aggregates them on the way out, and reads
		// checked before aggregation compare symbolically at the same
		// iteration, which is exactly the per-iteration semantics.
		w.written.AddMust(sec, w.a.Assume)
	}
	for _, sc := range f.ScalarWrites {
		w.invalidateScalar(sc)
		// Track simple invariant assignments for CW entry values.
		if id, ok := s.Lhs.(*lang.Ident); ok && id.Name == sc {
			v := w.a.In.FromAST(s.Rhs)
			if !v.MentionsVar(sc) {
				w.scalars[sc] = v
			}
		}
	}
}

func (w *walker) ifStmt(s *lang.IfStmt, env expr.Env) {
	f := dataflow.CondFacts(s, -1)
	for _, r := range f.ArrayReads {
		w.checkRead(r, env)
	}
	for i := range s.Elifs {
		ef := dataflow.CondFacts(s, i)
		for _, r := range ef.ArrayReads {
			w.checkRead(r, env)
		}
	}

	base := w.written.Clone()
	baseScalars := cloneScalars(w.scalars)

	branches := make([][]lang.Stmt, 0, len(s.Elifs)+2)
	branches = append(branches, s.Then)
	for _, arm := range s.Elifs {
		branches = append(branches, arm.Body)
	}
	branches = append(branches, s.Else) // nil means fall-through arm

	var combined *section.Set
	for _, body := range branches {
		w.written = base.Clone()
		w.scalars = cloneScalars(baseScalars)
		w.walk(body, env)
		if combined == nil {
			combined = w.written
		} else {
			combined = combined.IntersectMust(w.written, w.a.Assume)
		}
	}
	w.written = combined
	w.scalars = cloneScalars(baseScalars) // scalar values post-branch unknown
}

func cloneScalars(m map[string]*expr.Expr) map[string]*expr.Expr {
	c := make(map[string]*expr.Expr, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// doLoop processes an inner DO loop: reads are checked with the loop's
// index range added to the environment; writes are MUST-aggregated over the
// full range afterwards. CW analysis refines single-indexed fills.
func (w *walker) doLoop(s *lang.DoStmt, env expr.Env) {
	// Bounds expressions themselves are reads.
	f := dataflow.Facts(s)
	for _, r := range f.ArrayReads {
		w.checkRead(r, env)
	}

	lo := w.a.In.FromAST(s.Lo)
	hi := w.a.In.FromAST(s.Hi)
	dense := s.Step == nil
	if s.Step != nil {
		if c, ok := w.a.In.FromAST(s.Step).IsConst(); ok {
			switch {
			case c == 1:
				dense = true
			case c == -1:
				lo, hi = hi, lo
				dense = true
			case c > 1:
				// sparse but bounded
			case c < 0:
				lo, hi = hi, lo
			}
		} else {
			lo, hi = nil, nil
		}
	}
	inner := env
	if lo != nil && hi != nil {
		inner = env.With(s.Var.Name, expr.NewRange(lo, hi))
	} else {
		inner = env.With(s.Var.Name, expr.Range{})
	}

	// Single-indexed refinement for this inner loop.
	handled := w.singleIndexedLoop(s, env)

	// Sections depending on scalars the body modifies are stale from the
	// second iteration on: drop them before walking the body, or a read
	// in iteration 2 could claim coverage from a pre-loop write that used
	// an outdated scalar value.
	bodyModPre := w.a.Mod.StmtsMod(w.unit, s.Body)
	for v := range bodyModPre.Scalars {
		w.invalidateScalar(v)
	}
	w.invalidateScalar(s.Var.Name)

	// Collect the iteration's writes separately so we can aggregate.
	saved := w.written
	w.written = saved.Clone()
	w.walkInner(s.Body, inner, handled)
	iterWritten := w.written
	w.written = saved
	w.invalidateScalarsModified(s.Body)

	if lo == nil || hi == nil {
		return
	}
	// MUST-aggregate the new sections over the loop range.
	for _, sec := range iterWritten.Sections() {
		already := false
		for _, old := range saved.Sections() {
			if old.Contains(sec, w.a.Assume) {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if !dense {
			continue
		}
		if agg := sec.AggregateMust(s.Var.Name, lo, hi, w.a.Assume); agg != nil {
			// Sections depending on body-modified scalars are invalid.
			bodyMod := w.a.Mod.StmtsMod(w.unit, s.Body)
			stale := false
			for _, d := range agg.Dims {
				for sv := range bodyMod.Scalars {
					if sv == s.Var.Name {
						continue
					}
					if (d.Lo != nil && d.Lo.MentionsVar(sv)) || (d.Hi != nil && d.Hi.MentionsVar(sv)) {
						stale = true
					}
				}
			}
			if !stale {
				w.written.AddMust(agg, w.a.Assume)
			}
		}
	}
	// CW sections discovered by singleIndexedLoop were added directly.
	for arr, sec := range handled.cwSections {
		w.written.AddMust(sec, w.a.Assume)
		w.noteReason(arr, ReasonCW, nil)
	}
}

// walkInner walks an inner loop body, skipping arrays already handled by
// the single-indexed analysis.
func (w *walker) walkInner(stmts []lang.Stmt, env expr.Env, handled *siResult) {
	oldSkip := w.skip
	if len(handled.arrays) > 0 {
		w.skip = map[string]bool{}
		for k, v := range oldSkip {
			w.skip[k] = v
		}
		for arr := range handled.arrays {
			w.skip[arr] = true
		}
	}
	w.walk(stmts, env)
	w.skip = oldSkip
}

type siResult struct {
	arrays     map[string]bool
	cwSections map[string]*section.Section
}

// singleIndexedLoop runs the §2 analyses on an inner loop (DO or WHILE) and
// returns the arrays it fully accounts for plus the CW write sections valid
// after the loop.
func (w *walker) singleIndexedLoop(loopStmt lang.Stmt, env expr.Env) *siResult {
	res := &siResult{arrays: map[string]bool{}, cwSections: map[string]*section.Section{}}
	if w.a.DisableSingleIndex {
		return res
	}
	g := w.a.graph(w.unit)
	l := g.LoopFor(loopStmt)
	if l == nil {
		return res
	}
	for _, acc := range singleindex.Find(g, l, w.a.Info, w.a.Mod) {
		acc.Check = w.a.Guard.CheckFn()
		cw := singleindex.CheckConsecutivelyWritten(acc)
		if cw == nil || !cw.Increasing {
			continue
		}
		if !cw.ReadsCovered {
			// Reads of x(p) inside the loop come before the write.
			w.noteExposed(acc.Array)
			res.arrays[acc.Array] = true
			continue
		}
		// Entry value of the index: the last tracked invariant
		// assignment at this level.
		base := w.scalars[acc.Index]
		if base == nil {
			// Unknown entry value: the writes are real but their
			// section is unknown; treat reads handled (covered), writes
			// unknown (no MUST section).
			res.arrays[acc.Array] = true
			continue
		}
		res.arrays[acc.Array] = true
		res.cwSections[acc.Array] = section.New(acc.Array, base.AddConst(1), expr.Var(acc.Index))
	}
	return res
}

// whileLoop processes an inner WHILE loop: CW analysis may summarize its
// single-indexed fills; everything else is conservative (reads checked
// against the pre-loop written set; no new MUST writes).
func (w *walker) whileLoop(s *lang.WhileStmt, env expr.Env) {
	f := dataflow.Facts(s)
	for _, r := range f.ArrayReads {
		w.checkRead(r, env)
	}
	handled := w.singleIndexedLoop(s, env)
	w.invalidateScalarsModified(s.Body) // stale from the second iteration on
	w.walkInner(s.Body, envWithUnknownVars(env, w.a.Mod.StmtsMod(w.unit, s.Body)), handled)
	w.invalidateScalarsModified(s.Body)
	for arr, sec := range handled.cwSections {
		w.written.AddMust(sec, w.a.Assume)
		w.noteReason(arr, ReasonCW, nil)
	}
}

// envWithUnknownVars extends the environment with unbounded ranges for
// scalars the body modifies, so reads using them aggregate to unbounded
// (exposed unless the whole array is written).
func envWithUnknownVars(env expr.Env, mod *dataflow.ModSet) expr.Env {
	out := env
	for v := range mod.Scalars {
		out = out.With(v, expr.Range{})
	}
	return out
}

// invalidateScalarsModified drops cached state for scalars modified in a
// nested body.
func (w *walker) invalidateScalarsModified(body []lang.Stmt) {
	mod := w.a.Mod.StmtsMod(w.unit, body)
	for v := range mod.Scalars {
		w.invalidateScalar(v)
	}
}

func (w *walker) call(s *lang.CallStmt) {
	cu := w.a.Info.Program.Unit(s.Name)
	if cu == nil {
		return
	}
	m := w.a.Mod.GlobalsModifiedBy(cu)
	// Arrays written by the callee cannot be summarized (no inlining at
	// this point): their privatization fails. Arrays read by the callee:
	// conservatively exposed.
	for arr := range m.Arrays {
		w.noteFailed(arr)
	}
	for v := range m.Scalars {
		w.invalidateScalar(v)
	}
	// Reads by the callee: any global array it references.
	lang.WalkStmts(cu.Body, func(st lang.Stmt) bool {
		f := dataflow.Facts(st)
		for _, r := range f.ArrayReads {
			if sym := w.a.Info.LookupIn(cu, r.Array); sym != nil && sym.Global {
				w.noteExposed(r.Array)
			}
		}
		return true
	})
}

// conservativeRest handles unstructured tails: every array written later in
// the list fails, every read is exposed.
func (w *walker) conservativeRest(stmts []lang.Stmt, env expr.Env) {
	lang.WalkStmts(stmts, func(s lang.Stmt) bool {
		f := dataflow.Facts(s)
		for _, r := range f.ArrayReads {
			w.noteExposed(r.Array)
		}
		for _, wr := range f.ArrayWrites {
			w.noteFailed(wr.Array)
		}
		return true
	})
}

// String renders a result for reports.
func (r *Result) String() string {
	if !r.Private {
		return fmt.Sprintf("%s: not private", r.Array)
	}
	return fmt.Sprintf("%s: private (%s)", r.Array, r.Reason)
}
