package privatize

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

type world struct {
	t    *testing.T
	info *sem.Info
	an   *Analyzer
}

func build(t *testing.T, src string, withProp bool) *world {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mod := dataflow.ComputeMod(info)
	var prop *property.Analysis
	if withProp {
		prop = property.New(info, cfg.BuildHCG(prog), mod)
	}
	return &world{t: t, info: info, an: New(info, mod, prop)}
}

// outerLoop returns the first top-level DO loop of main.
func (w *world) outerLoop() *lang.DoStmt {
	w.t.Helper()
	for _, s := range w.info.Program.Main.Body {
		if d, ok := s.(*lang.DoStmt); ok {
			return d
		}
	}
	w.t.Fatal("no top-level loop")
	return nil
}

func (w *world) analyze() map[string]*Result {
	return w.an.AnalyzeLoop(w.info.Program.Main, w.outerLoop())
}

func TestAffinePrivatizable(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, m, i, j
  real tmp(nmax), a(nmax, nmax), s
  do i = 1, n
    do j = 1, m
      tmp(j) = a(i, j) * 2.0
    end do
    do j = 1, m
      s = s + tmp(j)
    end do
  end do
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || !r.Private {
		t.Fatalf("tmp should be privatizable: %+v", r)
	}
	if r.Reason != ReasonAffine {
		t.Errorf("reason = %s, want affine", r.Reason)
	}
	if r.LiveOut {
		t.Error("tmp is not read after the loop")
	}
}

func TestUpwardExposedRead(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, m, i, j
  real tmp(nmax), s
  do i = 1, n
    do j = 1, m
      s = s + tmp(j)
    end do
    do j = 1, m
      tmp(j) = s
    end do
  end do
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || r.Private {
		t.Fatalf("read-before-write must not privatize: %+v", r)
	}
}

func TestPartialWriteExposed(t *testing.T) {
	// Writes [1:m], reads [1:m+1]: the last element is exposed.
	src := `
program p
  param nmax = 100
  integer n, m, i, j
  real tmp(nmax), s
  do i = 1, n
    do j = 1, m
      tmp(j) = s
    end do
    do j = 1, m + 1
      s = s + tmp(j)
    end do
  end do
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || r.Private {
		t.Fatalf("partially covered reads must not privatize: %+v", r)
	}
}

// figure1a: x() is written consecutively in the while loop and read in the
// following do j loop; the CW analysis makes x privatizable for do k.
const figure1a = `
program fig1a
  param nmax = 100
  integer n, k, i, j, p
  integer link(nmax, nmax)
  integer cond(nmax, nmax)
  real x(nmax), y(nmax), z(nmax, nmax)
  do k = 1, n
    p = 0
    i = link(1, k)
    do while (i != 0)
      p = p + 1
      x(p) = y(i)
      i = link(i, k)
      if (cond(k, i) != 0) then
        if (p >= 1) then
          x(p) = y(i)
        end if
      end if
    end do
    do j = 1, p
      z(k, j) = x(j)
    end do
  end do
end
`

func TestFigure1aCWPrivatization(t *testing.T) {
	w := build(t, figure1a, false) // CW needs no property analysis
	r := w.analyze()["x"]
	if r == nil || !r.Private {
		t.Fatalf("x should be privatizable via CW: %+v", r)
	}
	if r.Reason != ReasonCW {
		t.Errorf("reason = %s, want consecutively-written", r.Reason)
	}
	// z is written at z(k, j) with k the loop variable: distinct rows per
	// iteration — z is not privatizable (and needs none); it must simply
	// not be "private".
	if rz := w.analyze()["z"]; rz != nil && rz.Private {
		t.Errorf("z should not be private: %+v", rz)
	}
}

func TestFigure1aWithoutCWEntryValue(t *testing.T) {
	// Same loop but p is not reset inside the iteration: the write
	// section is unknown and the do j read is exposed.
	src := `
program fig1x
  param nmax = 100
  integer n, k, i, j, p
  integer link(nmax, nmax)
  real x(nmax), y(nmax), z(nmax, nmax)
  p = 0
  do k = 1, n
    i = link(1, k)
    do while (i != 0)
      p = p + 1
      x(p) = y(i)
      i = link(i, k)
    end do
    do j = 1, p
      z(k, j) = x(j)
    end do
  end do
end
`
	w := build(t, src, false)
	r := w.analyze()["x"]
	if r == nil || r.Private {
		t.Fatalf("without a per-iteration reset the section is unknown: %+v", r)
	}
}

// stackSrc: t() used as a stack in the body of do i (Figure 1(b) shape).
const stackSrc = `
program stacky
  param nmax = 100
  integer n, m, i, j, p
  real t(nmax), a(nmax), b(nmax)
  do i = 1, n
    p = 0
    do j = 1, m
      if (a(j) > 0.0) then
        p = p + 1
        t(p) = a(j)
      else
        if (p >= 1) then
          b(j) = t(p)
          p = p - 1
        end if
      end if
    end do
  end do
end
`

func TestStackPrivatization(t *testing.T) {
	w := build(t, stackSrc, false)
	r := w.analyze()["t"]
	if r == nil || !r.Private {
		t.Fatalf("array stack should be privatizable: %+v", r)
	}
	if r.Reason != ReasonStack {
		t.Errorf("reason = %s, want stack", r.Reason)
	}
}

// gatherSrc is Fig. 14: x privatization needs the bounds of ind.
const gatherSrc = `
program gather
  param nmax = 100
  integer n, k, p, q, i, j, jj
  real x(nmax), y(nmax)
  real z(nmax, nmax)
  integer ind(nmax)
  do k = 1, n
    do i = 1, p
      x(i) = y(i) + real(k)
    end do
    q = 0
    do i = 1, p
      if (y(i) > 0.0) then
        q = q + 1
        ind(q) = i
      end if
    end do
    do j = 1, q
      jj = ind(j)
      z(k, ind(j)) = x(ind(j)) * y(ind(j))
    end do
  end do
end
`

func TestIndirectReadPrivatization(t *testing.T) {
	w := build(t, gatherSrc, true)
	r := w.analyze()["x"]
	if r == nil || !r.Private {
		t.Fatalf("x should be privatizable via indirect bounds: %+v", r)
	}
	if r.Reason != ReasonIndirect {
		t.Errorf("reason = %s, want indirect-bounds", r.Reason)
	}
	if len(r.Properties) == 0 {
		t.Error("expected a bounds property in the evidence")
	}
	// ind itself is written consecutively: also privatizable.
	ri := w.analyze()["ind"]
	if ri == nil || !ri.Private || ri.Reason != ReasonCW {
		t.Errorf("ind should be CW-private: %+v", ri)
	}
}

func TestIndirectReadFailsWithoutProp(t *testing.T) {
	w := build(t, gatherSrc, false)
	r := w.analyze()["x"]
	if r == nil || r.Private {
		t.Fatalf("without property analysis x must not be privatizable: %+v", r)
	}
}

func TestCallBlocksPrivatization(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real tmp(nmax)
  do i = 1, n
    tmp(1) = 0.0
    call helper
  end do
end
subroutine helper
  tmp(2) = 1.0
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || r.Private {
		t.Fatalf("callee writes must block privatization: %+v", r)
	}
}

func TestLiveOutDetection(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, m, i, j
  real tmp(nmax), s
  do i = 1, n
    do j = 1, m
      tmp(j) = real(i)
    end do
  end do
  s = tmp(1)
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || !r.Private {
		t.Fatalf("tmp should be privatizable: %+v", r)
	}
	if !r.LiveOut {
		t.Error("tmp is read after the loop: LiveOut must be set")
	}
}

func TestConditionalWriteNotCovering(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, m, i, j
  real tmp(nmax), a(nmax), s
  do i = 1, n
    do j = 1, m
      if (a(j) > 0.0) then
        tmp(j) = a(j)
      end if
    end do
    do j = 1, m
      s = s + tmp(j)
    end do
  end do
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || r.Private {
		t.Fatalf("conditional writes must not cover the reads: %+v", r)
	}
}

func TestBothBranchesCover(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, m, i, j
  real tmp(nmax), a(nmax), s
  do i = 1, n
    do j = 1, m
      if (a(j) > 0.0) then
        tmp(j) = a(j)
      else
        tmp(j) = 0.0
      end if
    end do
    do j = 1, m
      s = s + tmp(j)
    end do
  end do
end
`
	w := build(t, src, false)
	r := w.analyze()["tmp"]
	if r == nil || !r.Private {
		t.Fatalf("writes on all branches must cover: %+v", r)
	}
}
