package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// DefectClass names a seedable defect.
type DefectClass string

// Defect classes with known lint ground truth.
const (
	// DefectUseBeforeDef seeds a scalar read that no path assigns
	// (expect IRR1001).
	DefectUseBeforeDef DefectClass = "use-before-def"
	// DefectOOB seeds a constant off-by-one subscript past the declared
	// bound (expect IRR3002).
	DefectOOB DefectClass = "oob-subscript"
	// DefectNonInjective seeds a gather through a provably non-injective
	// index array (expect IRR2003 on the use loop).
	DefectNonInjective DefectClass = "non-injective-gather"
	// DefectNonMonotonic seeds an offset array filled by a decrementing
	// recurrence and consumed as a subscript: the definition-site
	// derivation matches the fill but cannot prove monotonicity (expect
	// IRR2004 on the fill loop).
	DefectNonMonotonic DefectClass = "non-monotonic-fill"
)

// Classes lists every defect class, for table-driven tests.
func Classes() []DefectClass {
	return []DefectClass{DefectUseBeforeDef, DefectOOB, DefectNonInjective, DefectNonMonotonic}
}

// SeededDefect is the ground truth of one injected defect.
type SeededDefect struct {
	Class DefectClass
	// Code is the diagnostic code a linter must report (the strings are
	// stable; see internal/lint's registry).
	Code string
	// Line is the 1-based source line the diagnostic must anchor to.
	Line int
	// Marker is a substring unique to the injected defect, for messages.
	Marker string
}

// GenerateDefective builds a random well-formed program and injects one
// defect of the given class, returning the source and its ground truth.
// The program still parses and checks; only the seeded defect class (plus
// whatever the random base program legitimately contains) is wrong with it.
func GenerateDefective(r *rand.Rand, cfg Config, class DefectClass) (string, SeededDefect) {
	src := Generate(r, cfg)
	var decl, block, marker, code string
	headerOffset := 0 // lines above the marker the diagnostic anchors to
	switch class {
	case DefectUseBeforeDef:
		decl = "  real ubd999\n"
		block = "  s3 = s3 + ubd999 * 0.25\n"
		marker = "s3 + ubd999"
		code = "IRR1001"
	case DefectOOB:
		block = "  a1(nn + 1) = 0.0\n"
		marker = "a1(nn + 1)"
		code = "IRR3002"
	case DefectNonInjective:
		decl = "  integer nj9(nn)\n"
		block = "  do w = 1, nn\n" +
			"    nj9(w) = mod(w, 4) + 1\n" +
			"  end do\n" +
			"  do w = 1, nn\n" +
			"    a2(nj9(w)) = a2(nj9(w)) + 2.0\n" +
			"  end do\n"
		marker = "a2(nj9(w)) ="
		headerOffset = 1 // the diagnostic anchors to the DO header above
		code = "IRR2003"
	case DefectNonMonotonic:
		decl = "  integer mp9(nn)\n"
		block = "  mp9(1) = nn\n" +
			"  do w = 1, nn - 1\n" +
			"    mp9(w + 1) = mp9(w) - 1\n" +
			"  end do\n" +
			"  do w = 1, nn\n" +
			"    a1(mp9(w)) = a1(mp9(w)) + 0.5\n" +
			"  end do\n"
		marker = "mp9(w + 1) = mp9(w) - 1"
		headerOffset = 1 // the diagnostic anchors to the fill's DO header
		code = "IRR2004"
	default:
		panic(fmt.Sprintf("progen: unknown defect class %q", class))
	}
	// Injection anchors are lines Generate always emits exactly once: the
	// last declaration and the first line of the final accumulation.
	if decl != "" {
		src = strings.Replace(src, "  real acc\n", "  real acc\n"+decl, 1)
	}
	src = strings.Replace(src, "  acc = 0.0\n", block+"  acc = 0.0\n", 1)
	idx := strings.Index(src, marker)
	if idx < 0 {
		panic("progen: defect marker not found after injection")
	}
	return src, SeededDefect{
		Class:  class,
		Code:   code,
		Line:   1 + strings.Count(src[:idx], "\n") - headerOffset,
		Marker: marker,
	}
}
