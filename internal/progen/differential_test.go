package progen

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/section"
	"repro/internal/sem"
)

// snapshot captures the OBSERVABLE state of a finished execution: every
// global array plus the PRINT output. Dead scalar stores may legitimately
// be eliminated by the passes, so scalar cells are not compared directly —
// any scalar that matters reaches an array or the output.
type snapshot struct {
	output  string
	arrays  map[string][]float64
	intArrs map[string][]int64
}

func runProgram(t *testing.T, info *sem.Info, procs int, sched interp.Schedule) *snapshot {
	t.Helper()
	var out strings.Builder
	in := interp.New(info, interp.Options{
		Machine:  machine.New(machine.Origin2000, procs),
		Schedule: sched,
		Poison:   true,
		MaxSteps: 50_000_000,
		Out:      &out,
	})
	if err := in.Run(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	snap := &snapshot{
		output:  out.String(),
		arrays:  map[string][]float64{},
		intArrs: map[string][]int64{},
	}
	for name, sym := range info.Globals {
		if sym.Kind != sem.ArraySym {
			continue
		}
		switch sym.Type {
		case lang.TReal:
			v, err := in.GlobalArrayReal(name)
			if err != nil {
				t.Fatal(err)
			}
			snap.arrays[name] = v
		case lang.TInteger:
			v, err := in.GlobalArrayInt(name)
			if err != nil {
				t.Fatal(err)
			}
			snap.intArrs[name] = v
		}
	}
	return snap
}

func close2(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func compareSnapshots(t *testing.T, label string, want, got *snapshot) {
	t.Helper()
	if !outputsClose(want.output, got.output) {
		t.Errorf("%s: output %q, want %q", label, got.output, want.output)
	}
	for name, w := range want.arrays {
		g := got.arrays[name]
		if len(g) != len(w) {
			t.Errorf("%s: array %s length %d vs %d", label, name, len(g), len(w))
			continue
		}
		for i := range w {
			if !close2(w[i], g[i]) {
				t.Errorf("%s: %s(%d) = %v, want %v", label, name, i+1, g[i], w[i])
				break
			}
		}
	}
	for name, w := range want.intArrs {
		g := got.intArrs[name]
		if len(g) != len(w) {
			t.Errorf("%s: array %s length %d vs %d", label, name, len(g), len(w))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%s: %s(%d) = %d, want %d", label, name, i+1, g[i], w[i])
				break
			}
		}
	}
}

// checkedInfo parses + checks a source without transforming it.
func checkedInfo(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse:\n%s\n%v", src, err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem:\n%s\n%v", src, err)
	}
	return info
}

// TestTransformInvariance: the pass pipeline must preserve semantics. The
// untransformed program and the fully transformed + parallelized program
// (run serially) must produce identical global state.
func TestTransformInvariance(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, Config{Subroutines: seed%3 == 0})

		ref := runProgram(t, checkedInfo(t, src), 1, interp.Forward)

		res, err := pipeline.Compile(src, parallel.Full, pipeline.Reorganized)
		if err != nil {
			t.Fatalf("seed %d: compile:\n%s\n%v", seed, src, err)
		}
		got := runProgram(t, res.Info, 1, interp.Forward)
		if t.Failed() {
			t.Fatalf("seed %d failed before comparison", seed)
		}
		before := failCount(t)
		compareSnapshots(t, "transform", ref, got)
		if failCount(t) != before {
			t.Fatalf("seed %d: transformed program diverged; source:\n%s\ntransformed:\n%s",
				seed, src, lang.Format(res.Program))
		}
	}
}

// TestParallelInvariance: every loop the parallelizer accepts must compute
// the same results at any processor count and chunk order.
func TestParallelInvariance(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, Config{Subroutines: seed%4 == 0})

		res, err := pipeline.Compile(src, parallel.Full, pipeline.Reorganized)
		if err != nil {
			t.Fatalf("seed %d: compile:\n%s\n%v", seed, src, err)
		}
		ref := runProgram(t, res.Info, 1, interp.Forward)
		for _, procs := range []int{3, 8} {
			for _, sched := range []interp.Schedule{interp.Forward, interp.Reverse} {
				got := runProgram(t, res.Info, procs, sched)
				before := failCount(t)
				compareSnapshots(t, "parallel", ref, got)
				if failCount(t) != before {
					t.Fatalf("seed %d procs %d sched %d diverged; source:\n%s\ntransformed:\n%s",
						seed, procs, sched, src, lang.Format(res.Program))
				}
			}
		}
	}
}

// outputsClose compares print outputs, tolerating float rounding: numeric
// tokens are compared within a relative tolerance, everything else exactly.
func outputsClose(a, b string) bool {
	fa, fb := strings.Fields(a), strings.Fields(b)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] == fb[i] {
			continue
		}
		x, errx := strconv.ParseFloat(fa[i], 64)
		y, erry := strconv.ParseFloat(fb[i], 64)
		if errx != nil || erry != nil || !close2(x, y) {
			return false
		}
	}
	return true
}

// failCount approximates "did compareSnapshots add failures" — testing.T
// doesn't expose a counter, so track via Failed transitions using a
// subtest-free trick: we reset nothing, just check Failed() flips.
func failCount(t *testing.T) bool { return t.Failed() }

// TestGeneratedProgramsCompileAllModes: every generated program must be
// accepted by all three compiler configurations.
func TestGeneratedProgramsCompileAllModes(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, Config{})
		for _, mode := range []parallel.Mode{parallel.Full, parallel.NoIAA, parallel.Baseline} {
			if _, err := pipeline.Compile(src, mode, pipeline.Reorganized); err != nil {
				t.Fatalf("seed %d mode %v:\n%s\n%v", seed, mode, src, err)
			}
		}
	}
}

// TestGeneratorDeterminism: the same seed yields the same program.
func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), Config{})
	b := Generate(rand.New(rand.NewSource(42)), Config{})
	if a != b {
		t.Error("generator is not deterministic")
	}
	c := Generate(rand.New(rand.NewSource(43)), Config{})
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

// TestPipelineStressLargePrograms: large random programs must compile
// through the full pipeline in bounded time without error.
func TestPipelineStressLargePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	for seed := int64(500); seed < 506; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, Config{N: 64, MaxBlocks: 40, Subroutines: true})
		res, err := pipeline.Compile(src, parallel.Full, pipeline.Reorganized)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.CompileTime.Seconds() > 30 {
			t.Errorf("seed %d: pathological compile time %v", seed, res.CompileTime)
		}
		// And it must still run correctly in parallel.
		ref := runProgram(t, res.Info, 1, interp.Forward)
		got := runProgram(t, res.Info, 8, interp.Reverse)
		compareSnapshots(t, "stress", ref, got)
	}
}

// TestGatherRecognitionMatchesRuntime: whenever the property analysis
// verifies injectivity and bounds for a gathered index array, the actual
// run-time contents must be pairwise distinct and within the derived
// bounds (the DESIGN.md cross-check invariant).
func TestGatherRecognitionMatchesRuntime(t *testing.T) {
	src := `
program gcheck
  param n = 64
  real x(n)
  integer ind(n)
  integer i, q
  do i = 1, n
    x(i) = real(mod(i * 13, 7)) - 3.0
  end do
  q = 0
  do i = 1, n
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  print "q", q
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod := dataflow.ComputeMod(info)
	an := property.New(info, cfg.BuildHCG(prog), mod)

	// The analysis verdicts.
	var use lang.Stmt = prog.Main.Body[len(prog.Main.Body)-1]
	inj := property.NewInjective("ind")
	if !an.Verify(inj, use, section.New("ind", expr.One, expr.Var("q"))) {
		t.Fatal("injectivity should verify")
	}
	bp := property.NewBounds("ind")
	if !an.Verify(bp, use, section.New("ind", expr.One, expr.Var("q"))) {
		t.Fatal("bounds should verify")
	}

	// The runtime facts.
	in := interp.New(info, interp.Options{Machine: machine.New(machine.Origin2000, 1)})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	q, _ := in.GlobalInt("q")
	vals, _ := in.GlobalArrayInt("ind")
	if q < 2 {
		t.Fatalf("degenerate gather (q=%d)", q)
	}
	seen := map[int64]bool{}
	lo, _ := bp.Lo.IsConst()
	for k := int64(0); k < q; k++ {
		v := vals[k]
		if seen[v] {
			t.Fatalf("claimed injective but ind repeats value %d", v)
		}
		seen[v] = true
		if v < lo || v > 64 {
			t.Fatalf("claimed bounds violated: %d", v)
		}
		if k > 0 && vals[k] <= vals[k-1] {
			t.Fatalf("gathered values not strictly increasing at %d", k)
		}
	}
}
