package progen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/sem"
)

// TestMutationRobustness: randomly corrupted sources must produce errors
// (or still-valid programs), never panics, from the lexer, parser and
// semantic analyzer.
func TestMutationRobustness(t *testing.T) {
	base := Generate(rand.New(rand.NewSource(1)), Config{})
	r := rand.New(rand.NewSource(2))
	glyphs := []byte("()+-*/=<>,:;.!&\"abcdefghijklmnopqrstuvwxyz0123456789 \n")

	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		// Apply 1-4 random mutations.
		for m := 0; m <= r.Intn(4); m++ {
			switch r.Intn(3) {
			case 0: // replace a byte
				b[r.Intn(len(b))] = glyphs[r.Intn(len(glyphs))]
			case 1: // delete a byte
				i := r.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 2: // duplicate a span
				i := r.Intn(len(b))
				j := i + r.Intn(10)
				if j > len(b) {
					j = len(b)
				}
				b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
			}
		}
		src := string(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated input: %v\n%s", p, src)
				}
			}()
			prog, err := lang.Parse(src)
			if err != nil {
				// Errors must carry positions.
				if !strings.Contains(err.Error(), ":") {
					t.Errorf("error without position: %v", err)
				}
				return
			}
			sem.Check(prog) // must not panic either way
		}()
	}
}

// TestTruncationRobustness: every prefix of a valid program must lex/parse
// without panicking.
func TestTruncationRobustness(t *testing.T) {
	src := Generate(rand.New(rand.NewSource(3)), Config{Subroutines: true})
	for cut := 0; cut < len(src); cut += 7 {
		prefix := src[:cut]
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on truncated input at %d: %v", cut, p)
				}
			}()
			if prog, err := lang.Parse(prefix); err == nil {
				sem.Check(prog)
			}
		}()
	}
}
