// Package progen generates random, well-formed, terminating F-lite
// programs for differential testing: the same program must produce the
// same results (all global scalars and arrays) before and after the
// transformation pipeline, and — once parallelized — at every processor
// count and chunk schedule.
//
// Generated programs are built from the idioms the analyses target:
// affine fill loops, scalar reductions, index-gathering loops with
// indirect uses, stack push/pop regions, conditional updates, while-loop
// countdowns and subroutine calls. All subscripts are in bounds by
// construction and every loop terminates.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	// N is the array extent (default 32).
	N int
	// MaxBlocks is the number of top-level constructs (default 6).
	MaxBlocks int
	// Subroutines enables a generated helper subroutine.
	Subroutines bool
}

// Generate builds a random F-lite program as source text.
func Generate(r *rand.Rand, cfg Config) string {
	if cfg.N <= 0 {
		cfg.N = 32
	}
	if cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 6
	}
	g := &gen{r: r, cfg: cfg}
	return g.program()
}

type gen struct {
	r   *rand.Rand
	cfg Config

	body     strings.Builder
	hasSub   bool
	blockIdx int
}

const (
	realArrays = 3 // a1..a3
	intArrays  = 2 // n1..n2 (index arrays)
	scalars    = 3 // s1..s3
)

func (g *gen) rint(n int) int { return g.r.Intn(n) }

// pick returns a random element.
func pick[T any](g *gen, xs []T) T { return xs[g.rint(len(xs))] }

func (g *gen) realArray() string { return fmt.Sprintf("a%d", 1+g.rint(realArrays)) }
func (g *gen) intArray() string  { return fmt.Sprintf("n%d", 1+g.rint(intArrays)) }
func (g *gen) scalar() string    { return fmt.Sprintf("s%d", 1+g.rint(scalars)) }

// realExpr builds a side-effect-free real expression over the loop variable
// v (may be "") and the declared arrays/scalars, depth-bounded.
func (g *gen) realExpr(v string, depth int) string {
	if depth <= 0 {
		switch g.rint(4) {
		case 0:
			return fmt.Sprintf("%d.%d", g.rint(9), g.rint(10))
		case 1:
			return g.scalar()
		case 2:
			if v != "" {
				return fmt.Sprintf("real(%s)", v)
			}
			return "1.5"
		default:
			if v != "" {
				return fmt.Sprintf("%s(%s)", g.realArray(), v)
			}
			return fmt.Sprintf("%s(%d)", g.realArray(), 1+g.rint(g.cfg.N))
		}
	}
	x := g.realExpr(v, depth-1)
	y := g.realExpr(v, depth-1)
	switch g.rint(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %s)", x, y)
	case 3:
		return fmt.Sprintf("(%s / (abs(%s) + 1.0))", x, y)
	case 4:
		return fmt.Sprintf("min(%s, %s)", x, y)
	default:
		return fmt.Sprintf("abs(%s)", x)
	}
}

// intExpr builds an in-bounds subscript expression over the loop var.
func (g *gen) safeSubscript(v string) string {
	switch g.rint(4) {
	case 0:
		return v
	case 1:
		// N+1-v stays within [1:N].
		return fmt.Sprintf("%d + 1 - %s", g.cfg.N, v)
	case 2:
		return fmt.Sprintf("mod(%s * %d, %d) + 1", v, 1+g.rint(5), g.cfg.N)
	default:
		return fmt.Sprintf("%d", 1+g.rint(g.cfg.N))
	}
}

func (g *gen) line(w *strings.Builder, depth int, format string, args ...any) {
	for i := 0; i < depth; i++ {
		w.WriteString("  ")
	}
	fmt.Fprintf(w, format, args...)
	w.WriteByte('\n')
}

// program emits the full source.
func (g *gen) program() string {
	nBlocks := 2 + g.rint(g.cfg.MaxBlocks)
	for b := 0; b < nBlocks; b++ {
		g.blockIdx = b
		g.block(&g.body, 1)
	}

	var sb strings.Builder
	sb.WriteString("program fuzz\n")
	g.line(&sb, 1, "param nn = %d", g.cfg.N)
	for i := 1; i <= realArrays; i++ {
		g.line(&sb, 1, "real a%d(nn)", i)
	}
	for i := 1; i <= intArrays; i++ {
		g.line(&sb, 1, "integer n%d(nn)", i)
	}
	for i := 1; i <= scalars; i++ {
		g.line(&sb, 1, "real s%d", i)
	}
	sb.WriteString("  integer i, j, k, q, p, w\n")
	sb.WriteString("  real acc\n")

	// Deterministic initialisation so results are data-dependent but
	// reproducible.
	g.line(&sb, 1, "do i = 1, nn")
	g.line(&sb, 2, "a1(i) = real(mod(i * 7, 11)) - 4.0")
	g.line(&sb, 2, "a2(i) = real(mod(i * 3, 5)) * 0.5")
	g.line(&sb, 2, "a3(i) = real(i) * 0.125")
	g.line(&sb, 2, "n1(i) = mod(i * 5, nn) + 1")
	g.line(&sb, 2, "n2(i) = i")
	g.line(&sb, 1, "end do")

	sb.WriteString(g.body.String())

	// Final observable accumulation over everything.
	g.line(&sb, 1, "acc = 0.0")
	g.line(&sb, 1, "do i = 1, nn")
	for a := 1; a <= realArrays; a++ {
		g.line(&sb, 2, "acc = acc + a%d(i)", a)
	}
	for a := 1; a <= intArrays; a++ {
		g.line(&sb, 2, "acc = acc + real(n%d(i)) * 0.001", a)
	}
	g.line(&sb, 1, "end do")
	g.line(&sb, 1, "print \"acc\", acc")
	sb.WriteString("end\n")

	if g.hasSub {
		sb.WriteString("\nsubroutine helper\n")
		sb.WriteString("  integer hi\n")
		g.line(&sb, 1, "do hi = 1, nn")
		g.line(&sb, 2, "a3(hi) = a3(hi) * 0.5 + 1.0")
		g.line(&sb, 1, "end do")
		sb.WriteString("end\n")
	}
	return sb.String()
}

// block emits one random top-level construct.
func (g *gen) block(w *strings.Builder, depth int) {
	switch g.rint(9) {
	case 0:
		g.fillLoop(w, depth)
	case 1:
		g.reductionLoop(w, depth)
	case 2:
		g.gatherUse(w, depth)
	case 3:
		g.stackRegion(w, depth)
	case 4:
		g.whileCountdown(w, depth)
	case 5:
		g.conditionalUpdate(w, depth)
	case 6:
		g.scalarChain(w, depth)
	case 7:
		g.gotoLoop(w, depth)
	default:
		if g.cfg.Subroutines {
			g.hasSub = true
			g.line(w, depth, "call helper")
		} else {
			g.fillLoop(w, depth)
		}
	}
}

// gotoLoop: a goto-formed countdown (natural loop without DO/WHILE syntax),
// exercising label handling in every layer.
func (g *gen) gotoLoop(w *strings.Builder, depth int) {
	label := 100 + g.blockIdx*10
	arr := g.realArray()
	g.line(w, depth, "w = %d", 2+g.rint(g.cfg.N-2))
	g.line(w, depth, "%d continue", label)
	g.line(w, depth, "%s(w) = %s(w) * 0.5 + 1.0", arr, arr)
	g.line(w, depth, "w = w - 1")
	g.line(w, depth, "if (w >= 1) goto %d", label)
}

// fillLoop: affine writes, possibly reading other arrays.
func (g *gen) fillLoop(w *strings.Builder, depth int) {
	arr := g.realArray()
	v := pick(g, []string{"i", "j", "k"})
	g.line(w, depth, "do %s = 1, nn", v)
	g.line(w, depth+1, "%s(%s) = %s", arr, v, g.realExpr(v, 1+g.rint(2)))
	if g.rint(2) == 0 {
		g.line(w, depth+1, "%s(%s) = %s(%s) * 0.75 + 0.25", arr, v, arr, v)
	}
	g.line(w, depth, "end do")
}

// reductionLoop: acc-style sum or min/max.
func (g *gen) reductionLoop(w *strings.Builder, depth int) {
	s := g.scalar()
	v := pick(g, []string{"i", "j"})
	g.line(w, depth, "%s = %d.0", s, g.rint(3))
	g.line(w, depth, "do %s = 1, nn", v)
	switch g.rint(3) {
	case 0:
		g.line(w, depth+1, "%s = %s + %s", s, s, g.realExpr(v, 1))
	case 1:
		g.line(w, depth+1, "%s = max(%s, %s(%s))", s, s, g.realArray(), v)
	default:
		g.line(w, depth+1, "%s = min(%s, %s(%s) + 0.5)", s, s, g.realArray(), v)
	}
	g.line(w, depth, "end do")
}

// gatherUse: index gathering followed by an indirect use — the Fig. 14
// idiom.
func (g *gen) gatherUse(w *strings.Builder, depth int) {
	src := g.realArray()
	dst := g.realArray()
	thr := fmt.Sprintf("%d.%d", g.rint(3), g.rint(10))
	g.line(w, depth, "q = 0")
	g.line(w, depth, "do i = 1, nn")
	g.line(w, depth+1, "if (%s(i) > %s) then", src, thr)
	g.line(w, depth+2, "q = q + 1")
	g.line(w, depth+2, "n1(q) = i")
	g.line(w, depth+1, "end if")
	g.line(w, depth, "end do")
	g.line(w, depth, "do j = 1, q")
	g.line(w, depth+1, "%s(n1(j)) = %s(n1(j)) + 1.0", dst, dst)
	g.line(w, depth, "end do")
}

// stackRegion: bounded push/pop with the Table 1 discipline.
func (g *gen) stackRegion(w *strings.Builder, depth int) {
	g.line(w, depth, "do k = 1, %d", 2+g.rint(4))
	g.line(w, depth+1, "p = 0")
	g.line(w, depth+1, "do j = 1, nn")
	g.line(w, depth+2, "if (a1(j) > 0.0) then")
	g.line(w, depth+3, "p = p + 1")
	g.line(w, depth+3, "a3(p) = a1(j) + real(k)")
	g.line(w, depth+2, "else")
	g.line(w, depth+3, "if (p >= 1) then")
	g.line(w, depth+4, "a2(j) = a3(p)")
	g.line(w, depth+4, "p = p - 1")
	g.line(w, depth+3, "end if")
	g.line(w, depth+2, "end if")
	g.line(w, depth+1, "end do")
	g.line(w, depth, "end do")
}

// whileCountdown: a terminating while loop.
func (g *gen) whileCountdown(w *strings.Builder, depth int) {
	g.line(w, depth, "w = %d", 3+g.rint(g.cfg.N-3))
	g.line(w, depth, "do while (w >= 1)")
	g.line(w, depth+1, "a%d(w) = a%d(w) + 0.5", 1+g.rint(realArrays), 1+g.rint(realArrays))
	g.line(w, depth+1, "w = w - %d", 1+g.rint(2))
	g.line(w, depth, "end do")
}

// conditionalUpdate: branching writes through safe subscripts.
func (g *gen) conditionalUpdate(w *strings.Builder, depth int) {
	arr := g.realArray()
	v := pick(g, []string{"i", "k"})
	g.line(w, depth, "do %s = 1, nn", v)
	g.line(w, depth+1, "if (mod(%s, %d) == 0) then", v, 2+g.rint(3))
	g.line(w, depth+2, "%s(%s) = %s", arr, g.safeSubscript(v), g.realExpr(v, 1))
	if g.rint(2) == 0 {
		g.line(w, depth+1, "else if (%s(%s) < 2.0) then", arr, v)
		g.line(w, depth+2, "%s(%s) = %s(%s) + 0.125", arr, v, arr, v)
	}
	g.line(w, depth+1, "end if")
	g.line(w, depth, "end do")
}

// scalarChain: straight-line scalar arithmetic (constant propagation and
// forward substitution fodder).
func (g *gen) scalarChain(w *strings.Builder, depth int) {
	a, b, c := g.scalar(), g.scalar(), g.scalar()
	g.line(w, depth, "%s = %d.0", a, 1+g.rint(5))
	g.line(w, depth, "%s = %s * 2.0 + 1.0", b, a)
	g.line(w, depth, "%s = %s - %s", c, b, a)
	g.line(w, depth, "a1(%d) = %s", 1+g.rint(g.cfg.N), c)
}
