package progen

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/sem"
)

// TestPrinterRoundTrip: for many random programs, Format(Parse(Format(p)))
// must be a fixed point and semantic analysis must accept both.
func TestPrinterRoundTrip(t *testing.T) {
	for seed := int64(300); seed < 360; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, Config{Subroutines: seed%2 == 0})
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse generated source:\n%s\n%v", seed, src, err)
		}
		text1 := lang.Format(prog)
		prog2, err := lang.Parse(text1)
		if err != nil {
			t.Fatalf("seed %d: reparse formatted:\n%s\n%v", seed, text1, err)
		}
		text2 := lang.Format(prog2)
		if text1 != text2 {
			t.Fatalf("seed %d: printer not idempotent:\n--- first\n%s\n--- second\n%s", seed, text1, text2)
		}
		if _, err := sem.Check(prog2); err != nil {
			t.Fatalf("seed %d: reparsed program fails sem: %v", seed, err)
		}
	}
}

// TestTokenizeGenerated: the lexer must accept every generated program and
// the token stream must be non-trivial.
func TestTokenizeGenerated(t *testing.T) {
	for seed := int64(400); seed < 420; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, Config{})
		toks, err := lang.Tokenize(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(toks) < 50 {
			t.Errorf("seed %d: suspiciously few tokens (%d)", seed, len(toks))
		}
	}
}
