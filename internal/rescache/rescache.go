// Package rescache is the cross-request compilation cache of irrd: a
// content-addressed result cache with single-flight coalescing, LRU
// recency ordering and a byte-budget eviction policy.
//
// The compiler is deterministic — an unchanged program under unchanged
// options always yields the same verdicts and the same irr-metrics/1
// document — so a serving process that sees the same bundled kernels and
// repeated sparse workloads over and over can answer warm requests from a
// frozen snapshot of the first compilation instead of recompiling. The
// cache is generic over the cached value so it can be tested standalone;
// irrd instantiates it with immutable compilation snapshots
// (irregular.Snapshot).
//
// Coalescing: N identical in-flight requests share one compile. The first
// caller of Do for a key becomes the leader and runs compute; concurrent
// callers with the same key park on the leader's flight and adopt its
// outcome. A leader that fails with a context error (its own request was
// canceled or timed out) or a panic does not poison the key: waiters
// retry, and the next one becomes the new leader with its own context.
// Errors are never cached — a failed compilation is re-attempted by the
// next request.
//
// Telemetry: when constructed with a recorder, the cache counts
// rescache_hits_total, rescache_misses_total, rescache_coalesced_total and
// rescache_evictions_total, and maintains the rescache_bytes and
// rescache_entries gauges — all served on the irrd /metrics endpoint.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"

	"repro/internal/obs"
)

// Key identifies one cacheable compilation: the content hash of the
// source text and every compilation option that affects the output.
// Derive with KeyOf.
type Key string

// KeyOf derives a content-addressed key from the given parts. Each part
// is length-prefixed before hashing, so part boundaries are unambiguous
// ("ab","c" and "a","bc" hash differently).
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Outcome reports how Do satisfied a request.
type Outcome int

// Outcomes.
const (
	// Miss: this caller was the leader and ran compute.
	Miss Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Coalesced: a concurrent leader's in-flight compute was shared.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "miss"
}

// errPanicked marks a flight whose compute panicked before settling. It
// is the flight's pre-set error: a panic unwinds past the settle without
// a normal return, and waiters must neither adopt a zero value nor treat
// the key as poisoned (they retry and re-compute).
var errPanicked = errors.New("rescache: compute panicked")

// Config sizes a cache.
type Config[V any] struct {
	// MaxBytes is the eviction budget: when the summed cost of the
	// entries exceeds it, least-recently-used entries are evicted. It
	// must be positive. A single entry costlier than the whole budget is
	// still cached (the cache would otherwise thrash on its key) and
	// evicted as soon as a second entry lands.
	MaxBytes int64
	// Cost estimates one value's retained bytes; values below 1 are
	// clamped to 1. Nil charges every entry 1 byte (a pure entry-count
	// budget).
	Cost func(V) int64
	// Rec, when non-nil, receives the rescache_* counters and gauges.
	Rec *obs.Recorder
}

// Cache is the content-addressed single-flight cache. Construct with New;
// all methods are safe for concurrent use.
type Cache[V any] struct {
	cost func(V) int64
	max  int64
	rec  *obs.Recorder

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // of *entry[V]; front = most recently used
	entries map[Key]*list.Element
	flights map[Key]*flight[V]
	waiting int // callers parked on a flight (test/stats visibility)
	stats   Stats
}

type entry[V any] struct {
	key  Key
	val  V
	cost int64
}

// flight is one in-progress compute. val and err are written exactly once
// (by the leader's settle) before done is closed.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache with the given configuration.
func New[V any](cfg Config[V]) *Cache[V] {
	if cfg.MaxBytes <= 0 {
		panic("rescache: MaxBytes must be positive")
	}
	cost := cfg.Cost
	if cost == nil {
		cost = func(V) int64 { return 1 }
	}
	return &Cache[V]{
		cost:    cost,
		max:     cfg.MaxBytes,
		rec:     cfg.Rec,
		lru:     list.New(),
		entries: map[Key]*list.Element{},
		flights: map[Key]*flight[V]{},
	}
}

// Do returns the cached value for key, or computes it. Concurrent calls
// for the same key coalesce: one runs compute, the rest share its result.
// ctx bounds only this caller's wait on another leader's flight — a
// caller that becomes the leader runs compute to completion on its own
// terms (compute closures typically carry their own context).
//
// A successful compute is cached; errors are not. A waiter whose leader
// failed with a context error or a panic retries (becoming the next
// leader); any other leader error is shared, since a deterministic
// compiler fails identically on identical input.
func (c *Cache[V]) Do(ctx context.Context, key Key, compute func() (V, error)) (V, Outcome, error) {
	var zero V
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			v := el.Value.(*entry[V]).val
			c.stats.Hits++
			c.mu.Unlock()
			c.rec.Count("rescache_hits_total", 1)
			return v, Hit, nil
		}
		if f, ok := c.flights[key]; ok {
			c.waiting++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				c.mu.Lock()
				c.waiting--
				c.mu.Unlock()
				return zero, Coalesced, ctx.Err()
			}
			c.mu.Lock()
			c.waiting--
			c.mu.Unlock()
			if retryable(f.err) {
				continue
			}
			c.mu.Lock()
			c.stats.Coalesced++
			c.mu.Unlock()
			c.rec.Count("rescache_coalesced_total", 1)
			return f.val, Coalesced, f.err
		}
		f := &flight[V]{done: make(chan struct{}), err: errPanicked}
		c.flights[key] = f
		c.stats.Misses++
		c.mu.Unlock()
		c.rec.Count("rescache_misses_total", 1)

		// settle runs even when compute panics: the flight is closed with
		// its pre-set errPanicked so waiters retry, and the panic keeps
		// unwinding to the caller (the irrd request guard turns it into
		// that one request's 500).
		func() {
			defer c.settle(key, f)
			f.val, f.err = compute()
		}()
		return f.val, Miss, f.err
	}
}

// retryable reports whether a leader's failure says nothing about the
// input itself — the leader's request was canceled, or its compute
// panicked — so a waiter should re-attempt instead of adopting it.
func retryable(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errPanicked)
}

// settle publishes the flight's outcome: the entry is inserted on
// success, the flight is removed either way, and waiters are released.
func (c *Cache[V]) settle(key Key, f *flight[V]) {
	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
}

// insertLocked adds one entry at the LRU front and evicts from the back
// until the byte budget holds again. Callers hold c.mu.
func (c *Cache[V]) insertLocked(key Key, val V) {
	if el, ok := c.entries[key]; ok {
		// A retried leader can insert a key an earlier leader already
		// settled; keep the existing entry.
		c.lru.MoveToFront(el)
		return
	}
	cost := c.cost(val)
	if cost < 1 {
		cost = 1
	}
	c.entries[key] = c.lru.PushFront(&entry[V]{key: key, val: val, cost: cost})
	c.bytes += cost
	c.rec.Count("rescache_bytes", cost)
	c.rec.Count("rescache_entries", 1)
	for c.bytes > c.max && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry[V])
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.cost
		c.stats.Evictions++
		c.rec.Count("rescache_bytes", -e.cost)
		c.rec.Count("rescache_entries", -1)
		c.rec.Count("rescache_evictions_total", 1)
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Entries and Bytes describe the current resident set.
	Entries int
	Bytes   int64
	// Hits, Misses, Coalesced and Evictions are lifetime totals.
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
	// Waiting is the number of callers currently parked on a flight.
	Waiting int
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	st.Bytes = c.bytes
	st.Waiting = c.waiting
	return st
}
