package rescache

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyOfBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error("part boundaries are ambiguous: KeyOf(ab,c) == KeyOf(a,bc)")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Error("KeyOf is not deterministic")
	}
	if KeyOf("x") == KeyOf("y") {
		t.Error("distinct inputs collide")
	}
}

func TestHitMissAndSharing(t *testing.T) {
	c := New(Config[string]{MaxBytes: 1 << 20, Cost: func(s string) int64 { return int64(len(s)) }})
	calls := 0
	compute := func() (string, error) { calls++; return "value", nil }

	v, out, err := c.Do(context.Background(), KeyOf("k"), compute)
	if err != nil || v != "value" || out != Miss {
		t.Fatalf("first Do = %q, %v, %v", v, out, err)
	}
	v, out, err = c.Do(context.Background(), KeyOf("k"), compute)
	if err != nil || v != "value" || out != Hit {
		t.Fatalf("second Do = %q, %v, %v", v, out, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(Config[string]{MaxBytes: 1 << 20})
	boom := errors.New("parse error")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() (string, error) { calls++; return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, out, err := c.Do(context.Background(), "k", func() (string, error) { calls++; return "ok", nil })
	if err != nil || v != "ok" || out != Miss {
		t.Fatalf("retry Do = %q, %v, %v", v, out, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (errors must not cache)", calls)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d", st.Entries)
	}
}

// TestSingleFlight parks N-1 waiters on one leader's flight and checks
// exactly one compute ran and every caller got its value. Run with -race.
func TestSingleFlight(t *testing.T) {
	c := New(Config[string]{MaxBytes: 1 << 20})
	const waiters = 16
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() (string, error) {
			close(entered)
			<-release
			calls.Add(1)
			return "shared", nil
		})
		leaderDone <- err
	}()
	<-entered

	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func() (string, error) {
				calls.Add(1)
				return "shared", nil
			})
			if err != nil || v != "shared" {
				t.Errorf("waiter %d: %q, %v", i, v, err)
			}
			outcomes[i] = out
		}()
	}
	// Wait until every follower is parked on the flight, then release the
	// leader: all of them must coalesce, none may compute.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Waiting != waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked", c.Stats().Waiting, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	for i, out := range outcomes {
		if out != Coalesced {
			t.Errorf("waiter %d outcome = %v, want coalesced", i, out)
		}
	}
	if st := c.Stats(); st.Coalesced != waiters {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, waiters)
	}
}

// TestCanceledLeaderDoesNotPoison: a leader that dies of its own context
// cancellation must not hand its error to waiters — one of them becomes
// the next leader and computes.
func TestCanceledLeaderDoesNotPoison(t *testing.T) {
	c := New(Config[string]{MaxBytes: 1 << 20})
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (string, error) {
			close(entered)
			<-release
			return "", fmt.Errorf("compile: %w", context.Canceled)
		})
	}()
	<-entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, out, err := c.Do(context.Background(), "k", func() (string, error) {
			return "recomputed", nil
		})
		if err != nil || v != "recomputed" || out != Miss {
			t.Errorf("waiter after canceled leader: %q, %v, %v", v, out, err)
		}
	}()
	for c.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
}

// TestWaiterContextCancellation: a waiter abandons the flight when its own
// context fires, without disturbing the leader.
func TestWaiterContextCancellation(t *testing.T) {
	c := New(Config[string]{MaxBytes: 1 << 20})
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), "k", func() (string, error) {
			close(entered)
			<-release
			return "late", nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for c.Stats().Waiting != 1 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, _, err := c.Do(ctx, "k", func() (string, error) { return "", nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter err = %v", err)
	}
	close(release)
	<-leaderDone
	if v, out, err := c.Do(context.Background(), "k", nil); err != nil || v != "late" || out != Hit {
		t.Fatalf("after leader settled: %q, %v, %v", v, out, err)
	}
}

// TestPanickingComputeReleasesFlight: a panic inside compute propagates to
// the leader's caller, but the flight is settled so the key stays usable.
func TestPanickingComputeReleasesFlight(t *testing.T) {
	c := New(Config[string]{MaxBytes: 1 << 20})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.Do(context.Background(), "k", func() (string, error) { panic("boom") })
	}()
	v, out, err := c.Do(context.Background(), "k", func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" || out != Miss {
		t.Fatalf("after panic: %q, %v, %v", v, out, err)
	}
}

// TestEvictionProperty drives random-cost inserts through a small budget
// and checks the invariants after every operation: the byte budget holds
// (a single oversized entry is the documented exception), the accounting
// matches the resident set, and eviction is strictly LRU.
func TestEvictionProperty(t *testing.T) {
	const budget = 10_000
	rng := rand.New(rand.NewSource(42))
	c := New(Config[int64]{MaxBytes: budget, Cost: func(v int64) int64 { return v }})
	live := map[Key]int64{}
	order := []Key{} // LRU order, oldest first
	touch := func(k Key) {
		for i, o := range order {
			if o == k {
				order = append(append(order[:i:i], order[i+1:]...), k)
				return
			}
		}
		order = append(order, k)
	}

	for i := 0; i < 2000; i++ {
		var k Key
		if len(order) > 0 && rng.Intn(3) == 0 {
			k = order[rng.Intn(len(order))] // re-touch: hit path
		} else {
			k = Key(fmt.Sprintf("k%d", i))
		}
		cost := int64(rng.Intn(3000) + 1)
		_, _, err := c.Do(context.Background(), k, func() (int64, error) { return cost, nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := live[k]; !ok {
			live[k] = cost
		}
		touch(k)
		// Model the eviction the cache must have performed.
		var total int64
		for _, v := range live {
			total += v
		}
		for total > budget && len(order) > 1 {
			oldest := order[0]
			total -= live[oldest]
			delete(live, oldest)
			order = order[1:]
		}

		st := c.Stats()
		if st.Bytes != total || st.Entries != len(live) {
			t.Fatalf("step %d: cache (bytes=%d entries=%d) diverged from model (bytes=%d entries=%d)",
				i, st.Bytes, st.Entries, total, len(live))
		}
		if st.Entries > 1 && st.Bytes > budget {
			t.Fatalf("step %d: budget exceeded with %d entries: %d > %d", i, st.Entries, st.Bytes, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("property run produced no evictions; budget too large for the workload")
	}
	// Every surviving key must still be a hit with its original value.
	for k, want := range live {
		v, out, err := c.Do(context.Background(), k, nil)
		if err != nil || out != Hit || v != want {
			t.Errorf("survivor %s: %d, %v, %v (want %d, hit)", k, v, out, err, want)
		}
	}
}

// TestConcurrentChurn hammers overlapping keys from many goroutines under
// a tight budget; run with -race. Correctness here is the absence of
// races, panics and accounting drift.
func TestConcurrentChurn(t *testing.T) {
	c := New(Config[int]{MaxBytes: 64, Cost: func(int) int64 { return 8 }})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				k := Key(fmt.Sprintf("k%d", rng.Intn(24)))
				v, _, err := c.Do(context.Background(), k, func() (int, error) {
					if rng.Intn(8) == 0 {
						return 0, errors.New("transient")
					}
					return 7, nil
				})
				if err == nil && v != 7 {
					t.Errorf("value = %d", v)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes != int64(8*st.Entries) {
		t.Errorf("accounting drift: bytes=%d entries=%d", st.Bytes, st.Entries)
	}
	if st.Bytes > 64 {
		t.Errorf("budget exceeded after quiesce: %d", st.Bytes)
	}
}
