package section

import (
	"testing"

	"repro/internal/expr"
)

func benchSection() *Section {
	lo := expr.Var("i").MulConst(2).AddConst(1)
	hi := expr.Var("n").Add(expr.Var("i"))
	return New("a", lo, hi)
}

// BenchmarkKeyUncached measures the full key rendering (what every Key call
// paid before memoization).
func BenchmarkKeyUncached(b *testing.B) {
	s := benchSection()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.renderKey()
	}
}

// BenchmarkKeyCached measures the memoized Key on a warm section.
func BenchmarkKeyCached(b *testing.B) {
	s := benchSection()
	s.Key()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

// BenchmarkKeyInterned measures Key when the bound expressions carry cached
// canonical keys (the compiled-pipeline configuration) but the section
// itself is fresh each time.
func BenchmarkKeyInterned(b *testing.B) {
	in := expr.NewInterner()
	lo := in.Intern(expr.Var("i").MulConst(2).AddConst(1))
	hi := in.Intern(expr.Var("n").Add(expr.Var("i")))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New("a", lo, hi)
		_ = s.Key()
	}
}

// TestKeyMemoized checks the memo returns the identical key and that Clone
// does not inherit it (clones are mutated by the set algebra).
func TestKeyMemoized(t *testing.T) {
	s := benchSection()
	k1 := s.Key()
	if k2 := s.Key(); k2 != k1 {
		t.Fatalf("memoized key changed: %q vs %q", k1, k2)
	}
	c := s.Clone()
	c.Dims[0] = expr.Range{Lo: expr.Zero, Hi: expr.One}
	if c.Key() == k1 {
		t.Fatalf("clone inherited the parent's key")
	}
	if s.renderKey() != k1 {
		t.Fatalf("memo diverged from render")
	}
}
