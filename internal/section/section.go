// Package section implements symbolic regular array sections and the
// conservative set algebra the array analyses are built on.
//
// A Section describes a rectangular region of one array: one symbolic
// [lo:hi] range per dimension (step 1). The paper's data-flow equations
// (§3.1) manipulate sections with union, subtraction and loop aggregation;
// crucially, Kill sets are MAY approximations (may only grow) and Gen sets
// are MUST approximations (may only shrink), so each operation here comes in
// a flavour for each direction. In the worst case Kill becomes the universal
// section and Gen becomes empty — exactly the paper's fallback.
package section

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/expr"
)

// Section is a rectangular symbolic region of one array. A nil bound in a
// dimension means unbounded in that direction; a Section with no Dims is
// invalid except via Universal, which represents "all of the array".
type Section struct {
	Array string
	Dims  []expr.Range

	// key memoizes Key(). Safe because sections are built (or Cloned — which
	// deliberately does not copy key) before being mutated, and never mutated
	// after first being used as a map key.
	key string
}

// New builds a one-dimensional section array[lo:hi].
func New(array string, lo, hi *expr.Expr) *Section {
	return &Section{Array: array, Dims: []expr.Range{{Lo: lo, Hi: hi}}}
}

// Elem builds the single-element section array[at] (one-dimensional).
func Elem(array string, at *expr.Expr) *Section {
	return New(array, at, at)
}

// NewMulti builds a multi-dimensional section.
func NewMulti(array string, dims []expr.Range) *Section {
	return &Section{Array: array, Dims: dims}
}

// Universal returns the section covering all of array, whatever its bounds.
func Universal(array string, ndims int) *Section {
	dims := make([]expr.Range, ndims)
	return &Section{Array: array, Dims: dims}
}

// IsUniversal reports whether every dimension is unbounded on both sides.
func (s *Section) IsUniversal() bool {
	for _, d := range s.Dims {
		if d.Lo != nil || d.Hi != nil {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s *Section) Clone() *Section {
	c := &Section{Array: s.Array, Dims: append([]expr.Range(nil), s.Dims...)}
	return c
}

func (s *Section) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		lo, hi := "*", "*"
		if d.Lo != nil {
			lo = d.Lo.String()
		}
		if d.Hi != nil {
			hi = d.Hi.String()
		}
		if lo == hi && d.Lo != nil {
			parts[i] = lo
		} else {
			parts[i] = lo + ":" + hi
		}
	}
	return fmt.Sprintf("%s[%s]", s.Array, strings.Join(parts, ", "))
}

// Key returns an unambiguous identity string for memoization. Unlike
// String — which collapses a lo==hi dimension to a single value, so
// p[i] and p[i:i] render identically while p[i:j] does not — Key always
// writes both bounds with a separator no expression rendering contains,
// so two sections share a Key exactly when they are structurally equal.
func (s *Section) Key() string {
	if s.key == "" {
		s.key = s.renderKey()
	}
	return s.key
}

// keyScratch recycles the assembly buffer of renderKey. Sections are keyed
// constantly on the analysis hot path (every memo probe); with interned
// bounds (String is a field read) the pooled scratch leaves exactly one
// allocation per render — the key string itself.
var keyScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

func (s *Section) renderKey() string {
	bp := keyScratch.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, s.Array...)
	for _, d := range s.Dims {
		b = append(b, '|')
		if d.Lo != nil {
			b = append(b, d.Lo.String()...)
		}
		b = append(b, ';')
		if d.Hi != nil {
			b = append(b, d.Hi.String()...)
		}
	}
	key := string(b)
	*bp = b
	keyScratch.Put(bp)
	return key
}

// ProvablyEmpty reports whether some dimension's range is provably empty
// (lo > hi) under the assumptions.
func (s *Section) ProvablyEmpty(a expr.Assumptions) bool {
	for _, d := range s.Dims {
		if d.Lo != nil && d.Hi != nil && expr.ProveLT(d.Hi, d.Lo, a) {
			return true
		}
	}
	return false
}

// Equal reports whether two sections are structurally identical.
func (s *Section) Equal(o *Section) bool {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if !rangeEqual(s.Dims[i], o.Dims[i]) {
			return false
		}
	}
	return true
}

func rangeEqual(a, b expr.Range) bool {
	return exprEqualOrBothNil(a.Lo, b.Lo) && exprEqualOrBothNil(a.Hi, b.Hi)
}

func exprEqualOrBothNil(a, b *expr.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// Contains conservatively proves s ⊇ o (same array, every dimension of s
// covering the corresponding dimension of o).
func (s *Section) Contains(o *Section, a expr.Assumptions) bool {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if !expr.RangeContains(s.Dims[i], o.Dims[i], a) {
			return false
		}
	}
	return true
}

// Disjoint conservatively proves s ∩ o = ∅: different arrays, or some
// dimension provably disjoint.
func (s *Section) Disjoint(o *Section, a expr.Assumptions) bool {
	if s.Array != o.Array {
		return true
	}
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if expr.DisjointRanges(s.Dims[i], o.Dims[i], a) {
			return true
		}
	}
	return false
}

// Intersect returns an over-approximation of s ∩ o (per-dimension maximum
// of lower bounds and minimum of upper bounds where provable; otherwise it
// keeps the bound from s). Returns nil when the intersection is provably
// empty or the arrays differ.
func (s *Section) Intersect(o *Section, a expr.Assumptions) *Section {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return nil
	}
	if s.Disjoint(o, a) {
		return nil
	}
	out := &Section{Array: s.Array, Dims: make([]expr.Range, len(s.Dims))}
	for i := range s.Dims {
		out.Dims[i] = expr.Range{
			Lo: maxBound(s.Dims[i].Lo, o.Dims[i].Lo, a),
			Hi: minBound(s.Dims[i].Hi, o.Dims[i].Hi, a),
		}
	}
	if out.ProvablyEmpty(a) {
		return nil
	}
	return out
}

// maxBound picks the provably larger of two lower bounds (nil = -inf).
func maxBound(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		// Unknown order: keep x (over-approximates the intersection).
		return x
	}
}

// minBound picks the provably smaller of two upper bounds (nil = +inf).
func minBound(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return x
	}
}

// UnionMay returns the rectangular hull of s and o: an over-approximation
// suitable for MAY sets (Kill, read sets). Returns nil when the arrays
// differ (callers keep them separate).
func (s *Section) UnionMay(o *Section, a expr.Assumptions) *Section {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return nil
	}
	out := &Section{Array: s.Array, Dims: make([]expr.Range, len(s.Dims))}
	for i := range s.Dims {
		out.Dims[i] = expr.Range{
			Lo: hullLo(s.Dims[i].Lo, o.Dims[i].Lo, a),
			Hi: hullHi(s.Dims[i].Hi, o.Dims[i].Hi, a),
		}
	}
	return out
}

func hullLo(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	if x == nil || y == nil {
		return nil
	}
	switch {
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return nil // unknown ⇒ unbounded (conservative for MAY)
	}
}

func hullHi(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	if x == nil || y == nil {
		return nil
	}
	switch {
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		return nil
	}
}

// UnionMust returns an under-approximation of s ∪ o: the exact union when
// the sections agree in all dimensions but one and are provably adjacent or
// overlapping in that one; otherwise it returns whichever operand contains
// the other, or nil if neither relation is provable. Suitable for MUST sets
// (Gen, write sets).
func (s *Section) UnionMust(o *Section, a expr.Assumptions) *Section {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return nil
	}
	if s.Contains(o, a) {
		return s.Clone()
	}
	if o.Contains(s, a) {
		return o.Clone()
	}
	// Exact merge along one dimension.
	diffDim := -1
	for i := range s.Dims {
		if !rangeEqual(s.Dims[i], o.Dims[i]) {
			if diffDim >= 0 {
				return nil
			}
			diffDim = i
		}
	}
	if diffDim < 0 {
		return s.Clone()
	}
	d1, d2 := s.Dims[diffDim], o.Dims[diffDim]
	if d1.Lo == nil || d1.Hi == nil || d2.Lo == nil || d2.Hi == nil {
		return nil
	}
	// Mergeable iff d2.lo <= d1.hi+1 and d1.lo <= d2.hi+1 (adjacent or
	// overlapping, in either order).
	if expr.ProveLE(d2.Lo, d1.Hi.AddConst(1), a) && expr.ProveLE(d1.Lo, d2.Hi.AddConst(1), a) {
		out := s.Clone()
		out.Dims[diffDim] = expr.Range{
			Lo: minBound2(d1.Lo, d2.Lo, a),
			Hi: maxBound2(d1.Hi, d2.Hi, a),
		}
		if out.Dims[diffDim].Lo == nil || out.Dims[diffDim].Hi == nil {
			return nil
		}
		return out
	}
	return nil
}

// minBound2 returns the provably smaller expression, or nil when unknown.
func minBound2(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return nil
	}
}

func maxBound2(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		return nil
	}
}

// SubtractMay returns an over-approximation of s \ o, used for propagating
// the still-unverified part of a query (paper: Section(remain) = Section −
// Gen). The result is nil when s is provably fully covered by o.
func (s *Section) SubtractMay(o *Section, a expr.Assumptions) *Section {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return s.Clone()
	}
	if o.Contains(s, a) {
		return nil
	}
	// Trimming is exact only if o covers s in every dimension but one.
	trimDim := -1
	for i := range s.Dims {
		if !expr.RangeContains(o.Dims[i], s.Dims[i], a) {
			if trimDim >= 0 {
				return s.Clone() // more than one uncovered dim: give up
			}
			trimDim = i
		}
	}
	if trimDim < 0 {
		return nil
	}
	d, od := s.Dims[trimDim], o.Dims[trimDim]
	out := s.Clone()
	// Trim from below: o covers [*, od.Hi] from the start of d.
	coversLow := od.Lo == nil || (d.Lo != nil && expr.ProveLE(od.Lo, d.Lo, a))
	coversHigh := od.Hi == nil || (d.Hi != nil && expr.ProveLE(d.Hi, od.Hi, a))
	switch {
	case coversLow && od.Hi != nil:
		// Remaining part is (od.Hi, d.Hi].
		out.Dims[trimDim] = expr.Range{Lo: od.Hi.AddConst(1), Hi: d.Hi}
	case coversHigh && od.Lo != nil:
		out.Dims[trimDim] = expr.Range{Lo: d.Lo, Hi: od.Lo.AddConst(-1)}
	default:
		return s.Clone() // cut in the middle or unknown: keep all of s
	}
	if out.ProvablyEmpty(a) {
		return nil
	}
	return out
}

// SubtractMust returns an under-approximation of s \ o, used when the
// result must itself stay a MUST set (e.g. Gen minus a MAY Kill). When the
// relationship between the sections cannot be proven, the result is nil
// (empty) — the safe direction for MUST.
func (s *Section) SubtractMust(o *Section, a expr.Assumptions) *Section {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return s.Clone()
	}
	if s.Disjoint(o, a) {
		return s.Clone()
	}
	// Exact trim requires o to cover s in every dimension but one and the
	// cut to be provably at one end of the remaining dimension.
	trimDim := -1
	for i := range s.Dims {
		if !expr.RangeContains(o.Dims[i], s.Dims[i], a) {
			if trimDim >= 0 {
				return nil
			}
			trimDim = i
		}
	}
	if trimDim < 0 {
		return nil // fully covered
	}
	d, od := s.Dims[trimDim], o.Dims[trimDim]
	if d.Lo == nil || d.Hi == nil {
		return nil
	}
	out := s.Clone()
	switch {
	case od.Hi != nil && (od.Lo == nil || expr.ProveLE(od.Lo, d.Lo, a)) &&
		expr.ProveLE(d.Lo, od.Hi.AddConst(1), a):
		// o covers the low end of s up to od.Hi (and reaches at least to
		// d.Lo-1): the remainder [od.Hi+1 : d.Hi] is inside s and outside o.
		out.Dims[trimDim] = expr.Range{Lo: od.Hi.AddConst(1), Hi: d.Hi}
	case od.Lo != nil && (od.Hi == nil || expr.ProveLE(d.Hi, od.Hi, a)) &&
		expr.ProveLE(od.Lo.AddConst(-1), d.Hi, a):
		out.Dims[trimDim] = expr.Range{Lo: d.Lo, Hi: od.Lo.AddConst(-1)}
	default:
		return nil
	}
	if out.ProvablyEmpty(a) {
		return nil
	}
	return out
}

// AggregateMay returns an over-approximation of the union of s over all
// values of the loop index v in [lo,hi]: each dimension's bounds are
// replaced by their extremes over the index range (Gross & Steenkiste
// aggregation). A dimension whose bounds cannot be bounded becomes
// unbounded.
func (s *Section) AggregateMay(v string, lo, hi *expr.Expr, a expr.Assumptions) *Section {
	env := expr.Env{v: expr.NewRange(lo, hi)}
	out := &Section{Array: s.Array, Dims: make([]expr.Range, len(s.Dims))}
	for i, d := range s.Dims {
		var nlo, nhi *expr.Expr
		if d.Lo != nil {
			if r, ok := expr.Bounds(d.Lo, env, a); ok {
				nlo = r.Lo
			}
		}
		if d.Hi != nil {
			if r, ok := expr.Bounds(d.Hi, env, a); ok {
				nhi = r.Hi
			}
		}
		out.Dims[i] = expr.Range{Lo: nlo, Hi: nhi}
	}
	return out
}

// AggregateMayEnv widens s over every variable bound in env (MAY): each
// dimension bound is replaced by its extreme over all the env ranges, or
// dropped (unbounded) when it cannot be bounded. Dimensions not mentioning
// any env variable are unchanged.
func (s *Section) AggregateMayEnv(env expr.Env, a expr.Assumptions) *Section {
	out := s.Clone()
	for _, v := range env.Vars() {
		r := env[v]
		for i, d := range out.Dims {
			lo, hi := d.Lo, d.Hi
			if lo != nil && lo.MentionsVar(v) {
				lo = nil
				if r.Lo != nil && r.Hi != nil {
					if b, ok := expr.Bounds(d.Lo, expr.Env{v: r}, a); ok {
						lo = b.Lo
					}
				}
			}
			if hi != nil && hi.MentionsVar(v) {
				hi = nil
				if r.Lo != nil && r.Hi != nil {
					if b, ok := expr.Bounds(d.Hi, expr.Env{v: r}, a); ok {
						hi = b.Hi
					}
				}
			}
			out.Dims[i] = expr.Range{Lo: lo, Hi: hi}
		}
	}
	return out
}

// AggregateMust returns an under-approximation of the union of s over v in
// [lo,hi]. The aggregation is exact — and therefore admissible as MUST —
// only when, in the single dimension that varies with v, consecutive
// iterations produce adjacent or overlapping ranges (dense coverage):
//
//	hi(v) + 1 >= lo(v+1)   for all v
//
// and the dimension bounds are affine in v. Dimensions not mentioning v
// must be identical across iterations (they are, syntactically). Returns
// nil when exactness cannot be proven; callers must then drop the Gen.
//
// The loop is assumed non-empty by the caller (lo <= hi); DO-loop Gen sets
// are only used under that premise.
func (s *Section) AggregateMust(v string, lo, hi *expr.Expr, a expr.Assumptions) *Section {
	varying := -1
	for i, d := range s.Dims {
		mentions := (d.Lo != nil && d.Lo.MentionsVar(v)) || (d.Hi != nil && d.Hi.MentionsVar(v))
		if mentions {
			if varying >= 0 {
				return nil // varies in two dimensions: not a dense sweep
			}
			varying = i
		}
	}
	if varying < 0 {
		return s.Clone() // invariant in v: every iteration writes the same region
	}
	d := s.Dims[varying]
	if d.Lo == nil || d.Hi == nil {
		return nil
	}
	// Affine check (also rejects v inside opaque atoms).
	if _, _, ok := d.Lo.Affine(v); !ok {
		return nil
	}
	if _, _, ok := d.Hi.Affine(v); !ok {
		return nil
	}
	vp1 := expr.Var(v).AddConst(1)
	nextLo := d.Lo.SubstVar(v, vp1)
	// Density: hi(v)+1 >= lo(v+1), i.e. lo(v+1) <= hi(v)+1.
	if !expr.ProveLE(nextLo, d.Hi.AddConst(1), a) {
		return nil
	}
	// Non-empty per-iteration range: lo(v) <= hi(v) must hold for all v;
	// prove it symbolically (conservatively).
	if !expr.ProveLE(d.Lo, d.Hi, a) {
		return nil
	}
	// Monotonicity direction: with density proven lo(v+1) <= hi(v)+1 and
	// per-iteration non-emptiness, the union over [lo,hi] is exactly
	// [min(lo(lo),lo(hi)) : max(hi(lo),hi(hi))]; we additionally require
	// the bounds to be monotone in v so the extremes sit at the ends.
	loAtLo := d.Lo.SubstVar(v, lo)
	loAtHi := d.Lo.SubstVar(v, hi)
	hiAtLo := d.Hi.SubstVar(v, lo)
	hiAtHi := d.Hi.SubstVar(v, hi)
	coefLo, _, _ := d.Lo.Affine(v)
	coefHi, _, _ := d.Hi.Affine(v)
	var newLo, newHi *expr.Expr
	switch {
	case coefLo >= 0 && coefHi >= 0:
		newLo, newHi = loAtLo, hiAtHi
	case coefLo <= 0 && coefHi <= 0:
		newLo, newHi = loAtHi, hiAtLo
	default:
		return nil
	}
	out := s.Clone()
	out.Dims[varying] = expr.Range{Lo: newLo, Hi: newHi}
	return out
}
