package section

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/lang"
)

func c(v int64) *expr.Expr  { return expr.Const(v) }
func v(n string) *expr.Expr { return expr.Var(n) }

// parseE parses a lone expression by wrapping it in a dummy assignment.
func parseE(t *testing.T, src string) lang.Expr {
	t.Helper()
	prog, err := lang.Parse("program t\n zz9 = " + src + "\nend\n")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog.Main.Body[0].(*lang.AssignStmt).Rhs
}

func sec1(array string, lo, hi *expr.Expr) *Section { return New(array, lo, hi) }

func TestContainsAndDisjoint(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0, "p": expr.GT0}
	s := sec1("x", c(1), v("n"))
	inner := sec1("x", c(1), v("n").AddConst(-1))
	if !s.Contains(inner, a) {
		t.Error("x[1:n] should contain x[1:n-1]")
	}
	if inner.Contains(s, a) {
		t.Error("x[1:n-1] should not contain x[1:n]")
	}
	other := sec1("y", c(1), v("n"))
	if !s.Disjoint(other, a) {
		t.Error("different arrays are disjoint")
	}
	above := sec1("x", v("n").AddConst(1), v("n").AddConst(5))
	if !s.Disjoint(above, a) {
		t.Error("x[1:n] and x[n+1:n+5] should be disjoint")
	}
	if s.Disjoint(inner, a) {
		t.Error("overlapping sections reported disjoint")
	}
}

func TestProvablyEmpty(t *testing.T) {
	a := expr.Assumptions{}
	if !sec1("x", c(5), c(1)).ProvablyEmpty(a) {
		t.Error("x[5:1] is empty")
	}
	if sec1("x", c(1), c(1)).ProvablyEmpty(a) {
		t.Error("x[1:1] is not empty")
	}
	if sec1("x", v("p"), v("q")).ProvablyEmpty(a) {
		t.Error("x[p:q] emptiness unknown, must not be provably empty")
	}
}

func TestUnionMust(t *testing.T) {
	a := expr.Assumptions{"p": expr.GT0}
	// Adjacent: [1:p] ∪ [p+1:p+1] = [1:p+1]
	s1 := sec1("x", c(1), v("p"))
	s2 := Elem("x", v("p").AddConst(1))
	u := s1.UnionMust(s2, a)
	if u == nil {
		t.Fatal("adjacent union failed")
	}
	want := sec1("x", c(1), v("p").AddConst(1))
	if !u.Equal(want) {
		t.Errorf("got %s, want %s", u, want)
	}
	// Gap: [1:p] ∪ [p+2:p+2] is not exactly representable.
	s3 := Elem("x", v("p").AddConst(2))
	if got := s1.UnionMust(s3, a); got != nil {
		t.Errorf("gapped union should fail, got %s", got)
	}
	// Contained.
	s4 := Elem("x", c(1))
	if got := s1.UnionMust(s4, a); got == nil || !got.Equal(s1) {
		t.Errorf("contained union = %v", got)
	}
}

func TestUnionMay(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	s1 := sec1("x", c(1), c(5))
	s2 := sec1("x", c(10), v("n").AddConst(20))
	u := s1.UnionMay(s2, a)
	want := sec1("x", c(1), v("n").AddConst(20))
	if u == nil || !u.Equal(want) {
		t.Errorf("got %v, want %s", u, want)
	}
	// Unknown relative order of bounds falls back to unbounded.
	s3 := sec1("x", v("p"), v("p"))
	u2 := s1.UnionMay(s3, a)
	if u2.Dims[0].Lo != nil || u2.Dims[0].Hi != nil {
		t.Errorf("hull with unknown bound should be unbounded, got %s", u2)
	}
}

func TestSubtractMay(t *testing.T) {
	a := expr.Assumptions{"p": expr.GT0, "n": expr.GT0}
	// [1:n] - [1:p] = [p+1:n] (over-approx of the true remainder).
	s := sec1("x", c(1), v("n"))
	cover := sec1("x", c(1), v("p"))
	r := s.SubtractMay(cover, a)
	want := sec1("x", v("p").AddConst(1), v("n"))
	if r == nil || !r.Equal(want) {
		t.Errorf("got %v, want %s", r, want)
	}
	// Full cover → nil.
	if got := s.SubtractMay(sec1("x", c(1), v("n")), a); got != nil {
		t.Errorf("full cover should leave nothing, got %s", got)
	}
	// Middle cut keeps everything (contiguous over-approximation).
	mid := sec1("x", c(3), c(4))
	if got := s.SubtractMay(mid, a); got == nil || !got.Equal(s) {
		t.Errorf("middle cut = %v, want original", got)
	}
	// Different array unchanged.
	if got := s.SubtractMay(sec1("y", c(1), v("n")), a); got == nil || !got.Equal(s) {
		t.Errorf("other-array subtraction = %v", got)
	}
}

func TestSubtractHighEnd(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	s := sec1("x", c(1), v("n"))
	cover := sec1("x", c(5), v("n"))
	r := s.SubtractMay(cover, a)
	want := sec1("x", c(1), c(4))
	if r == nil || !r.Equal(want) {
		t.Errorf("got %v, want %s", r, want)
	}
}

func TestAggregateMay(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	// x(i) for i in [1:n] → x[1:n]
	s := Elem("x", v("i"))
	g := s.AggregateMay("i", c(1), v("n"), a)
	want := sec1("x", c(1), v("n"))
	if !g.Equal(want) {
		t.Errorf("got %s, want %s", g, want)
	}
	// x(p(i)) cannot be bounded → unbounded dimension.
	opaque := Elem("x", expr.FromAST(parseE(t, "p(i)")))
	g2 := opaque.AggregateMay("i", c(1), v("n"), a)
	if g2.Dims[0].Lo != nil || g2.Dims[0].Hi != nil {
		t.Errorf("opaque subscript should aggregate to unbounded, got %s", g2)
	}
}

func TestAggregateMust(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	// Dense: x(i) over [1:n] → [1:n]
	s := Elem("x", v("i"))
	g := s.AggregateMust("i", c(1), v("n"), a)
	if g == nil || !g.Equal(sec1("x", c(1), v("n"))) {
		t.Errorf("dense aggregate = %v", g)
	}
	// Strided: x(2*i) has holes → nil.
	s2 := Elem("x", v("i").MulConst(2))
	if got := s2.AggregateMust("i", c(1), v("n"), a); got != nil {
		t.Errorf("strided aggregate should fail, got %s", got)
	}
	// Overlapping windows: x(i:i+2) over [1:n] → [1:n+2].
	s3 := sec1("x", v("i"), v("i").AddConst(2))
	g3 := s3.AggregateMust("i", c(1), v("n"), a)
	if g3 == nil || !g3.Equal(sec1("x", c(1), v("n").AddConst(2))) {
		t.Errorf("window aggregate = %v", g3)
	}
	// Invariant section: unchanged.
	s4 := sec1("x", c(1), v("m"))
	g4 := s4.AggregateMust("i", c(1), v("n"), a)
	if g4 == nil || !g4.Equal(s4) {
		t.Errorf("invariant aggregate = %v", g4)
	}
	// Decreasing sweep: x(n-i+1) over i in [1:n] → [1:n].
	ni := v("n").Sub(v("i")).AddConst(1)
	s5 := Elem("x", ni)
	g5 := s5.AggregateMust("i", c(1), v("n"), a)
	if g5 == nil || !g5.Equal(sec1("x", c(1), v("n"))) {
		t.Errorf("decreasing aggregate = %v", g5)
	}
}

func TestMultiDim(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	// z(k, j) for j in [1:p], k fixed.
	zkj := NewMulti("z", []expr.Range{expr.Point(v("k")), expr.Point(v("j"))})
	g := zkj.AggregateMust("j", c(1), v("p"), a)
	want := NewMulti("z", []expr.Range{expr.Point(v("k")), expr.NewRange(c(1), v("p"))})
	if g == nil || !g.Equal(want) {
		t.Errorf("got %v, want %s", g, want)
	}
	// Two varying dims fail MUST aggregation.
	zjj := NewMulti("z", []expr.Range{expr.Point(v("j")), expr.Point(v("j"))})
	if got := zjj.AggregateMust("j", c(1), v("p"), a); got != nil {
		t.Errorf("two varying dims should fail, got %s", got)
	}
}

func TestUniversal(t *testing.T) {
	u := Universal("x", 1)
	if !u.IsUniversal() {
		t.Error("Universal not universal")
	}
	a := expr.Assumptions{}
	s := sec1("x", c(1), c(10))
	if !u.Contains(s, a) {
		t.Error("universal should contain everything")
	}
	if got := s.SubtractMay(u, a); got != nil {
		t.Errorf("subtracting universal leaves %s", got)
	}
}

func TestSetBasics(t *testing.T) {
	a := expr.Assumptions{"p": expr.GT0}
	s := NewSet()
	s.AddMust(Elem("x", c(1)), a)
	s.AddMust(Elem("x", c(2)), a)
	s.AddMust(Elem("y", c(1)), a)
	if len(s.Sections()) != 2 {
		t.Errorf("adjacent elements should merge: %s", s)
	}
	if got := s.Arrays(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("arrays: %v", got)
	}
	cover := NewSet(sec1("x", c(1), c(5)), sec1("y", c(1), c(5)))
	if !s.CoveredBy(cover, a) {
		t.Errorf("%s should be covered by %s", s, cover)
	}
	if s.CoveredBy(NewSet(sec1("x", c(1), c(5))), a) {
		t.Error("y section not covered")
	}
}

func TestSetSubtract(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0, "p": expr.GT0}
	reads := NewSet(sec1("x", c(1), v("n")))
	writes := NewSet(sec1("x", c(1), v("n")))
	rem := reads.SubtractMay(writes, a)
	if !rem.Empty() {
		t.Errorf("remainder = %s, want empty", rem)
	}
	partial := NewSet(sec1("x", c(1), v("p")))
	rem2 := reads.SubtractMay(partial, a)
	if rem2.Empty() {
		t.Error("partial cover should leave a remainder")
	}
}

func TestSetIntersects(t *testing.T) {
	a := expr.Assumptions{"p": expr.GT0}
	s1 := NewSet(sec1("x", c(1), v("p")))
	s2 := NewSet(sec1("x", v("p").AddConst(1), v("p").AddConst(9)))
	if s1.IntersectsWith(s2, a) {
		t.Error("provably disjoint sets reported intersecting")
	}
	s3 := NewSet(sec1("x", v("p"), v("p").AddConst(9)))
	if !s1.IntersectsWith(s3, a) {
		t.Error("overlapping sets must report (possible) intersection")
	}
}

// --- property-based tests ---------------------------------------------------

// concretize evaluates a section with constant bounds into a set of ints.
func concretize(s *Section) (map[int64]bool, bool) {
	if s == nil {
		return map[int64]bool{}, true
	}
	lo, ok1 := s.Dims[0].Lo.IsConst()
	hi, ok2 := s.Dims[0].Hi.IsConst()
	if !ok1 || !ok2 {
		return nil, false
	}
	m := map[int64]bool{}
	for i := lo; i <= hi; i++ {
		m[i] = true
	}
	return m, true
}

func randSec(r *rand.Rand) *Section {
	lo := int64(r.Intn(20) - 5)
	hi := lo + int64(r.Intn(10)) - 2 // sometimes empty
	return sec1("x", c(lo), c(hi))
}

func TestQuickSubtractOverApproximates(t *testing.T) {
	a := expr.Assumptions{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, o := randSec(r), randSec(r)
		rem := s.SubtractMay(o, a)
		sv, _ := concretize(s)
		ov, _ := concretize(o)
		rv, ok := concretize(rem)
		if !ok {
			return true
		}
		// Every element of s \ o must be in rem.
		for e := range sv {
			if !ov[e] && !rv[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionMustUnderApproximates(t *testing.T) {
	a := expr.Assumptions{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, o := randSec(r), randSec(r)
		u := s.UnionMust(o, a)
		if u == nil {
			return true // giving up is always sound
		}
		sv, _ := concretize(s)
		ov, _ := concretize(o)
		uv, ok := concretize(u)
		if !ok {
			return true
		}
		// Every element of u must be in s ∪ o.
		for e := range uv {
			if !sv[e] && !ov[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionMayOverApproximates(t *testing.T) {
	a := expr.Assumptions{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, o := randSec(r), randSec(r)
		u := s.UnionMay(o, a)
		sv, _ := concretize(s)
		ov, _ := concretize(o)
		uv, ok := concretize(u)
		if !ok {
			return true // unbounded covers everything
		}
		for e := range sv {
			if !uv[e] {
				return false
			}
		}
		for e := range ov {
			if !uv[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickDisjointSound(t *testing.T) {
	a := expr.Assumptions{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, o := randSec(r), randSec(r)
		if !s.Disjoint(o, a) {
			return true // "maybe overlapping" is always sound
		}
		sv, _ := concretize(s)
		ov, _ := concretize(o)
		for e := range sv {
			if ov[e] {
				return false // claimed disjoint but overlaps
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
