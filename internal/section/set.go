package section

import (
	"sort"
	"strings"

	"repro/internal/expr"
)

// Set is a collection of sections, possibly over several arrays. The same
// Set type serves both MAY roles (read sets, Kill) and MUST roles (write
// sets, Gen); the caller picks MAY or MUST operations accordingly.
type Set struct {
	secs []*Section
}

// NewSet builds a set from sections.
func NewSet(secs ...*Section) *Set {
	s := &Set{}
	for _, sec := range secs {
		if sec != nil {
			s.secs = append(s.secs, sec.Clone())
		}
	}
	return s
}

// Empty reports whether the set has no sections.
func (s *Set) Empty() bool { return s == nil || len(s.secs) == 0 }

// Sections returns the sections in deterministic (string) order.
func (s *Set) Sections() []*Section {
	if s == nil {
		return nil
	}
	out := append([]*Section(nil), s.secs...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Arrays returns the sorted distinct array names in the set.
func (s *Set) Arrays() []string {
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	var names []string
	for _, sec := range s.secs {
		if !seen[sec.Array] {
			seen[sec.Array] = true
			names = append(names, sec.Array)
		}
	}
	sort.Strings(names)
	return names
}

// Of returns the sections of the given array.
func (s *Set) Of(array string) []*Section {
	if s == nil {
		return nil
	}
	var out []*Section
	for _, sec := range s.secs {
		if sec.Array == array {
			out = append(out, sec)
		}
	}
	return out
}

// Clone returns a deep-enough copy (sections are immutable by convention).
func (s *Set) Clone() *Set {
	if s == nil {
		return &Set{}
	}
	return &Set{secs: append([]*Section(nil), s.secs...)}
}

// AddMay unions sec into the set as a MAY approximation: it merges with an
// existing section of the same array via the rectangular hull when the hull
// does not lose boundedness (an unprovable bound order would degrade the
// hull to unbounded), and otherwise keeps the sections separate — a list of
// sections is still an exact union.
func (s *Set) AddMay(sec *Section, a expr.Assumptions) {
	if sec == nil {
		return
	}
	for i, old := range s.secs {
		if old.Array != sec.Array || len(old.Dims) != len(sec.Dims) {
			continue
		}
		u := old.UnionMay(sec, a)
		if u == nil {
			continue
		}
		lossless := true
		for d := range u.Dims {
			if u.Dims[d].Lo == nil && (old.Dims[d].Lo != nil || sec.Dims[d].Lo != nil) {
				lossless = false
				break
			}
			if u.Dims[d].Hi == nil && (old.Dims[d].Hi != nil || sec.Dims[d].Hi != nil) {
				lossless = false
				break
			}
		}
		if lossless {
			s.secs[i] = u
			return
		}
	}
	s.secs = append(s.secs, sec.Clone())
}

// AddMust unions sec into the set as a MUST approximation: it merges with
// an existing section only when the exact union is provable, keeps the
// containing one, and otherwise appends (the set stays an under-
// approximation because each member individually is MUST).
func (s *Set) AddMust(sec *Section, a expr.Assumptions) {
	if sec == nil {
		return
	}
	for i, old := range s.secs {
		if old.Array == sec.Array {
			if u := old.UnionMust(sec, a); u != nil {
				s.secs[i] = u
				return
			}
		}
	}
	s.secs = append(s.secs, sec.Clone())
}

// UnionMay merges all sections of o into s (MAY).
func (s *Set) UnionMay(o *Set, a expr.Assumptions) {
	if o == nil {
		return
	}
	for _, sec := range o.secs {
		s.AddMay(sec, a)
	}
}

// UnionMust merges all sections of o into s (MUST).
func (s *Set) UnionMust(o *Set, a expr.Assumptions) {
	if o == nil {
		return
	}
	for _, sec := range o.secs {
		s.AddMust(sec, a)
	}
}

// CoveredBy conservatively proves that every section of s is contained in
// some single section of cover.
func (s *Set) CoveredBy(cover *Set, a expr.Assumptions) bool {
	if s.Empty() {
		return true
	}
	if cover == nil {
		return false
	}
	for _, sec := range s.secs {
		ok := false
		for _, c := range cover.secs {
			if c.Contains(sec, a) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SubtractMay removes cover from every section of s (over-approximate
// remainder) and drops provably empty results.
func (s *Set) SubtractMay(cover *Set, a expr.Assumptions) *Set {
	if s.Empty() {
		return &Set{}
	}
	out := &Set{}
	for _, sec := range s.secs {
		rem := sec.Clone()
		for _, c := range cover.Sections() {
			if rem == nil {
				break
			}
			rem = rem.SubtractMay(c, a)
		}
		if rem != nil && !rem.ProvablyEmpty(a) {
			out.secs = append(out.secs, rem)
		}
	}
	return out
}

// SubtractMust removes cover from every section of s keeping the result an
// under-approximation (sections whose relationship to the cover cannot be
// proven are dropped entirely).
func (s *Set) SubtractMust(cover *Set, a expr.Assumptions) *Set {
	if s.Empty() {
		return &Set{}
	}
	out := &Set{}
	for _, sec := range s.secs {
		rem := sec.Clone()
		for _, c := range cover.Sections() {
			if rem == nil {
				break
			}
			rem = rem.SubtractMust(c, a)
		}
		if rem != nil && !rem.ProvablyEmpty(a) {
			out.secs = append(out.secs, rem)
		}
	}
	return out
}

// IntersectMust returns an under-approximation of s ∩ o: the sections of s
// that are provably contained in some section of o, plus the sections of o
// provably contained in some section of s.
func (s *Set) IntersectMust(o *Set, a expr.Assumptions) *Set {
	out := &Set{}
	if s.Empty() || o.Empty() {
		return out
	}
	for _, x := range s.secs {
		for _, y := range o.secs {
			if y.Contains(x, a) {
				out.AddMust(x, a)
				break
			}
		}
	}
	for _, y := range o.secs {
		for _, x := range s.secs {
			if x.Contains(y, a) {
				out.AddMust(y, a)
				break
			}
		}
	}
	return out
}

// IntersectsWith conservatively tests whether s and o may overlap: it
// returns false only when every pair of sections is provably disjoint.
func (s *Set) IntersectsWith(o *Set, a expr.Assumptions) bool {
	if s.Empty() || o.Empty() {
		return false
	}
	for _, x := range s.secs {
		for _, y := range o.secs {
			if !x.Disjoint(y, a) {
				return true
			}
		}
	}
	return false
}

func (s *Set) String() string {
	if s.Empty() {
		return "{}"
	}
	parts := make([]string, 0, len(s.secs))
	for _, sec := range s.Sections() {
		parts = append(parts, sec.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
