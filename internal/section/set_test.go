package section

import (
	"testing"

	"repro/internal/expr"
)

func TestSubtractMustUnderApproximates(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0, "p": expr.GT0}
	s := New("x", c(1), v("n"))
	// Covered low end: remainder is exactly the high part.
	r := s.SubtractMust(New("x", c(1), v("p")), a)
	if r == nil || !r.Equal(New("x", v("p").AddConst(1), v("n"))) {
		t.Errorf("got %v", r)
	}
	// Unknown relationship: MUST must drop to nil.
	if got := s.SubtractMust(New("x", v("q"), v("q").AddConst(3)), a); got != nil {
		t.Errorf("unknown cover should yield nil, got %s", got)
	}
	// Different array: untouched.
	if got := s.SubtractMust(New("y", c(1), v("n")), a); got == nil || !got.Equal(s) {
		t.Errorf("other array: %v", got)
	}
	// Full cover: nil.
	if got := s.SubtractMust(New("x", c(1), v("n")), a); got != nil {
		t.Errorf("full cover: %v", got)
	}
}

func TestSubtractMustDisjointBelow(t *testing.T) {
	// s = [5:10], cover = [1:3] (provably disjoint): remainder is all of s.
	a := expr.Assumptions{}
	s := New("x", c(5), c(10))
	r := s.SubtractMust(New("x", c(1), c(3)), a)
	if r == nil || !r.Equal(s) {
		t.Errorf("disjoint subtract: %v", r)
	}
	// Not provably disjoint and cut conditions unprovable: nil (sound).
	s2 := New("x", v("p"), c(10))
	r2 := s2.SubtractMust(New("x", c(1), c(3)), a)
	if r2 != nil {
		t.Errorf("unprovable trim must drop to nil for MUST, got %s", r2)
	}
}

func TestIntersectMust(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	s1 := NewSet(New("x", c(1), v("n")))
	s2 := NewSet(New("x", c(1), v("n").AddConst(-1)))
	got := s1.IntersectMust(s2, a)
	// [1:n-1] is contained in [1:n]: it survives.
	if got.Empty() {
		t.Fatal("intersection lost the contained section")
	}
	secs := got.Sections()
	if len(secs) != 1 || !secs[0].Equal(New("x", c(1), v("n").AddConst(-1))) {
		t.Errorf("got %s", got)
	}
	// Disjoint arrays: empty.
	s3 := NewSet(New("y", c(1), v("n")))
	if !s1.IntersectMust(s3, a).Empty() {
		t.Error("cross-array intersection must be empty")
	}
}

func TestAggregateMayEnv(t *testing.T) {
	a := expr.Assumptions{"n": expr.GT0}
	env := expr.Env{"i": expr.NewRange(c(1), v("n"))}
	// Point x(i) widens to [1:n].
	s := Elem("x", v("i"))
	g := s.AggregateMayEnv(env, a)
	if !g.Equal(New("x", c(1), v("n"))) {
		t.Errorf("got %s", g)
	}
	// A dimension with an unboundable mention becomes unbounded.
	opaque := Elem("x", expr.FromAST(parseE(t, "p(i)")))
	g2 := opaque.AggregateMayEnv(env, a)
	if g2.Dims[0].Lo != nil || g2.Dims[0].Hi != nil {
		t.Errorf("opaque mention should widen to unbounded: %s", g2)
	}
	// Invariant sections unchanged.
	inv := New("x", c(2), c(5))
	if !inv.AggregateMayEnv(env, a).Equal(inv) {
		t.Error("invariant section changed")
	}
	// Unbounded env var wipes the bound that mentions it.
	env2 := expr.Env{"i": {}}
	g3 := s.AggregateMayEnv(env2, a)
	if g3.Dims[0].Lo != nil || g3.Dims[0].Hi != nil {
		t.Errorf("unbounded env: %s", g3)
	}
}

func TestSetCloneIsolation(t *testing.T) {
	a := expr.Assumptions{}
	s := NewSet(New("x", c(1), c(5)))
	cl := s.Clone()
	cl.AddMust(New("y", c(1), c(2)), a)
	if len(s.Sections()) != 1 {
		t.Error("clone mutation leaked into original")
	}
	var nilSet *Set
	if !nilSet.Empty() {
		t.Error("nil set should be empty")
	}
	if nilSet.Clone() == nil {
		t.Error("Clone of nil should allocate")
	}
}

func TestSetOfAndString(t *testing.T) {
	a := expr.Assumptions{}
	s := NewSet()
	s.AddMay(New("x", c(1), c(5)), a)
	s.AddMay(New("y", c(2), c(3)), a)
	if len(s.Of("x")) != 1 || len(s.Of("z")) != 0 {
		t.Error("Of lookup")
	}
	if str := s.String(); str != "{x[1:5], y[2:3]}" {
		t.Errorf("String: %q", str)
	}
	if (&Set{}).String() != "{}" {
		t.Error("empty set rendering")
	}
}

func TestAddMayKeepsSeparateWhenHullLossy(t *testing.T) {
	a := expr.Assumptions{}
	s := NewSet()
	s.AddMay(New("x", c(0), c(0)), a)
	s.AddMay(New("x", v("n"), v("n")), a) // order vs 0 unknown
	if len(s.Sections()) != 2 {
		t.Errorf("lossy hull should keep sections separate: %s", s)
	}
	// Both elements must still be covered.
	if !s.IntersectsWith(NewSet(New("x", c(0), c(0))), a) {
		t.Error("first element lost")
	}
}
