// Package sem performs semantic analysis of F-lite programs: symbol
// resolution, type checking, intrinsic recognition, label checking, and call
// graph construction.
//
// F-lite follows the variable model the paper assumes (§3.2.1): subroutines
// take no parameters; every variable declared in the main program is global
// and visible in every subroutine unless shadowed by a local declaration.
package sem

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// SymbolKind distinguishes scalars, arrays and named constants.
type SymbolKind int

// Symbol kinds.
const (
	ScalarSym SymbolKind = iota
	ArraySym
	ParamSym
)

func (k SymbolKind) String() string {
	switch k {
	case ScalarSym:
		return "scalar"
	case ArraySym:
		return "array"
	case ParamSym:
		return "param"
	}
	return fmt.Sprintf("SymbolKind(%d)", int(k))
}

// Dim is one resolved array dimension with constant bounds.
type Dim struct {
	Lo, Hi int64
}

// Size returns the extent of the dimension.
func (d Dim) Size() int64 { return d.Hi - d.Lo + 1 }

// Symbol is a resolved variable, array or named constant.
type Symbol struct {
	Name   string
	Kind   SymbolKind
	Type   lang.BasicType
	Dims   []Dim // resolved bounds; only for ArraySym
	Global bool  // declared in the main program
	Value  int64 // constant value; only for ParamSym
	Decl   lang.Node
}

// NumElems returns the total number of elements of an array symbol.
func (s *Symbol) NumElems() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.Size()
	}
	return n
}

// Scope resolves names for one program unit: locals first, then globals.
type Scope struct {
	Unit    *lang.Unit
	Locals  map[string]*Symbol
	globals map[string]*Symbol
}

// Lookup resolves name in this scope, returning nil if undeclared.
func (sc *Scope) Lookup(name string) *Symbol {
	if s, ok := sc.Locals[name]; ok {
		return s
	}
	if s, ok := sc.globals[name]; ok {
		return s
	}
	return nil
}

// Names returns all visible names, sorted, locals overriding globals.
func (sc *Scope) Names() []string {
	seen := map[string]bool{}
	var names []string
	for n := range sc.Locals {
		seen[n] = true
		names = append(names, n)
	}
	for n := range sc.globals {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Info is the result of semantic analysis.
type Info struct {
	Program *lang.Program
	Globals map[string]*Symbol
	Scopes  map[*lang.Unit]*Scope
	// Calls maps each unit to the (deduplicated, sorted) names of the
	// subroutines it calls.
	Calls map[*lang.Unit][]string
	// Labels maps each unit to its labeled statements.
	Labels map[*lang.Unit]map[int]lang.Stmt
}

// Scope returns the scope of unit u.
func (in *Info) Scope(u *lang.Unit) *Scope { return in.Scopes[u] }

// LookupIn resolves name in unit u's scope.
func (in *Info) LookupIn(u *lang.Unit, name string) *Symbol {
	sc := in.Scopes[u]
	if sc == nil {
		return nil
	}
	return sc.Lookup(name)
}

// CalleeOrder returns all units in reverse topological order of the call
// graph (callees before callers). The order is deterministic.
func (in *Info) CalleeOrder() []*lang.Unit {
	var order []*lang.Unit
	state := map[*lang.Unit]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(u *lang.Unit)
	visit = func(u *lang.Unit) {
		if state[u] != 0 {
			return
		}
		state[u] = 1
		for _, callee := range in.Calls[u] {
			if cu := in.Program.Unit(callee); cu != nil {
				visit(cu)
			}
		}
		state[u] = 2
		order = append(order, u)
	}
	for _, u := range in.Program.Units() {
		visit(u)
	}
	return order
}

// A SemError is a semantic error with a source position.
type SemError struct {
	Pos lang.Pos
	Msg string
}

func (e *SemError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects multiple semantic errors.
type ErrorList []*SemError

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, 0, len(l))
	for _, e := range l {
		msgs = append(msgs, e.Error())
	}
	return strings.Join(msgs, "\n")
}

type checker struct {
	prog   *lang.Program
	info   *Info
	errs   ErrorList
	params map[string]int64 // visible named constants while resolving decls
}

func (c *checker) errorf(pos lang.Pos, format string, args ...any) {
	c.errs = append(c.errs, &SemError{pos, fmt.Sprintf(format, args...)})
}

// Intrinsics lists the F-lite intrinsic functions with their arity bounds
// (-1 means variadic with at least MinArgs).
var Intrinsics = map[string]struct {
	MinArgs int
	MaxArgs int // -1 means unbounded
}{
	"mod":  {2, 2},
	"min":  {2, -1},
	"max":  {2, -1},
	"abs":  {1, 1},
	"sqrt": {1, 1},
	"sin":  {1, 1},
	"cos":  {1, 1},
	"exp":  {1, 1},
	"log":  {1, 1},
	"int":  {1, 1},
	"real": {1, 1},
}

// Check performs full semantic analysis of prog. On success it returns an
// Info and mutates the AST in one way only: ArrayRef nodes that are
// intrinsic calls get their Intrinsic flag set.
func Check(prog *lang.Program) (*Info, error) {
	c := &checker{
		prog: prog,
		info: &Info{
			Program: prog,
			Globals: map[string]*Symbol{},
			Scopes:  map[*lang.Unit]*Scope{},
			Calls:   map[*lang.Unit][]string{},
			Labels:  map[*lang.Unit]map[int]lang.Stmt{},
		},
	}
	if prog.Main == nil {
		c.errorf(lang.Pos{Line: 1, Col: 1}, "program has no main unit")
		return nil, c.errs
	}

	// Pass 1: declarations. Main first so globals are visible everywhere.
	c.declareUnit(prog.Main, true)
	seen := map[string]*lang.Unit{prog.Main.Name: prog.Main}
	for _, s := range prog.Subs {
		if prev, dup := seen[s.Name]; dup {
			c.errorf(s.NamePos, "unit %q redeclared (previous at %s)", s.Name, prev.NamePos)
			continue
		}
		seen[s.Name] = s
		c.declareUnit(s, false)
	}

	// Pass 2: bodies.
	for _, u := range prog.Units() {
		if c.info.Scopes[u] != nil {
			c.checkUnit(u)
		}
	}

	// Pass 3: call graph sanity (targets exist, no recursion).
	c.checkCallGraph()

	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}

func (c *checker) declareUnit(u *lang.Unit, isMain bool) {
	sc := &Scope{Unit: u, Locals: map[string]*Symbol{}, globals: c.info.Globals}
	c.info.Scopes[u] = sc
	target := sc.Locals
	if isMain {
		target = c.info.Globals
	}

	c.params = map[string]int64{}
	// Named constants from the main unit are visible in subroutines too.
	for name, s := range c.info.Globals {
		if s.Kind == ParamSym {
			c.params[name] = s.Value
		}
	}

	for _, pd := range u.Params {
		v, ok := c.constInt(pd.Value)
		if !ok {
			c.errorf(pd.NamePos, "param %q must be a constant integer expression", pd.Name)
			continue
		}
		if _, dup := target[pd.Name]; dup {
			c.errorf(pd.NamePos, "%q redeclared", pd.Name)
			continue
		}
		target[pd.Name] = &Symbol{
			Name: pd.Name, Kind: ParamSym, Type: lang.TInteger,
			Global: isMain, Value: v, Decl: pd,
		}
		c.params[pd.Name] = v
	}

	for _, d := range u.Decls {
		if _, dup := target[d.Name]; dup {
			c.errorf(d.NamePos, "%q redeclared", d.Name)
			continue
		}
		if _, isIntr := Intrinsics[d.Name]; isIntr {
			c.errorf(d.NamePos, "%q shadows an intrinsic function", d.Name)
			continue
		}
		sym := &Symbol{Name: d.Name, Type: d.Type, Global: isMain, Decl: d}
		if d.IsArray() {
			sym.Kind = ArraySym
			ok := true
			for _, b := range d.Dims {
				lo := int64(1)
				if b.Lo != nil {
					v, okc := c.constInt(b.Lo)
					if !okc {
						c.errorf(d.NamePos, "array %q: lower bound is not a constant integer expression", d.Name)
						ok = false
						break
					}
					lo = v
				}
				hi, okc := c.constInt(b.Hi)
				if !okc {
					c.errorf(d.NamePos, "array %q: upper bound is not a constant integer expression", d.Name)
					ok = false
					break
				}
				if hi < lo {
					c.errorf(d.NamePos, "array %q: empty dimension %d:%d", d.Name, lo, hi)
					ok = false
					break
				}
				sym.Dims = append(sym.Dims, Dim{Lo: lo, Hi: hi})
			}
			if !ok {
				continue
			}
		} else {
			sym.Kind = ScalarSym
		}
		target[d.Name] = sym
	}
}

// constInt evaluates a constant integer expression (literals, params, + - *
// / and unary minus).
func (c *checker) constInt(e lang.Expr) (int64, bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Value, true
	case *lang.Ident:
		v, ok := c.params[e.Name]
		return v, ok
	case *lang.Unary:
		if e.Op == lang.OpNeg {
			v, ok := c.constInt(e.X)
			return -v, ok
		}
	case *lang.Binary:
		x, okx := c.constInt(e.X)
		y, oky := c.constInt(e.Y)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case lang.OpAdd:
			return x + y, true
		case lang.OpSub:
			return x - y, true
		case lang.OpMul:
			return x * y, true
		case lang.OpDiv:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		}
	}
	return 0, false
}

func (c *checker) checkUnit(u *lang.Unit) {
	sc := c.info.Scopes[u]
	labels := map[int]lang.Stmt{}
	c.info.Labels[u] = labels

	// Collect labels first (GOTO may jump forward).
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		if l := s.Label(); l != 0 {
			if prev, dup := labels[l]; dup {
				c.errorf(s.Pos(), "label %d already used at %s", l, prev.Pos())
			} else {
				labels[l] = s
			}
		}
		return true
	})

	var calls []string
	callSeen := map[string]bool{}

	var checkBody func(stmts []lang.Stmt, loopDepth int)
	checkBody = func(stmts []lang.Stmt, loopDepth int) {
		// Labels visible for GOTO from this region: any label in the
		// same region or an enclosing one. Jumping *into* a block is
		// rejected below by checking the target's region.
		for _, s := range stmts {
			switch s := s.(type) {
			case *lang.AssignStmt:
				lt := c.checkLvalue(sc, s.Lhs)
				rt := c.checkExpr(sc, s.Rhs)
				c.requireAssignable(s.Pos(), lt, rt)
			case *lang.IfStmt:
				c.requireLogical(sc, s.Cond)
				checkBody(s.Then, loopDepth)
				for _, arm := range s.Elifs {
					c.requireLogical(sc, arm.Cond)
					checkBody(arm.Body, loopDepth)
				}
				checkBody(s.Else, loopDepth)
			case *lang.DoStmt:
				iv := sc.Lookup(s.Var.Name)
				switch {
				case iv == nil:
					c.errorf(s.Var.NamePos, "undeclared loop variable %q", s.Var.Name)
				case iv.Kind != ScalarSym || iv.Type != lang.TInteger:
					c.errorf(s.Var.NamePos, "loop variable %q must be an integer scalar", s.Var.Name)
				}
				c.requireInteger(sc, s.Lo)
				c.requireInteger(sc, s.Hi)
				if s.Step != nil {
					c.requireInteger(sc, s.Step)
				}
				checkBody(s.Body, loopDepth+1)
			case *lang.WhileStmt:
				c.requireLogical(sc, s.Cond)
				checkBody(s.Body, loopDepth+1)
			case *lang.CallStmt:
				if !callSeen[s.Name] {
					callSeen[s.Name] = true
					calls = append(calls, s.Name)
				}
				if c.prog.Unit(s.Name) == nil {
					c.errorf(s.Pos(), "call of undefined subroutine %q", s.Name)
				} else if s.Name == u.Name {
					c.errorf(s.Pos(), "recursive call of %q (recursion is not supported)", s.Name)
				}
			case *lang.GotoStmt:
				if _, ok := labels[s.Target]; !ok {
					c.errorf(s.Pos(), "goto %d: no such label in unit %q", s.Target, u.Name)
				}
			case *lang.PrintStmt:
				for _, a := range s.Args {
					c.checkExpr(sc, a)
				}
			case *lang.ContinueStmt, *lang.ReturnStmt, *lang.StopStmt:
				// nothing to check
			}
		}
	}
	checkBody(u.Body, 0)
	sort.Strings(calls)
	c.info.Calls[u] = calls

	c.checkGotoRegions(u)
}

// checkGotoRegions rejects GOTOs that jump into a nested block (the CFG and
// all structured analyses assume single-entry regions). A jump is legal if
// the target statement is in the same statement list as the GOTO or in a
// lexically enclosing one.
func (c *checker) checkGotoRegions(u *lang.Unit) {
	// region assigns each statement (by identity) the statement-list path
	// it belongs to; we encode the path as a string of indices.
	region := map[lang.Stmt]string{}
	var mark func(stmts []lang.Stmt, path string)
	mark = func(stmts []lang.Stmt, path string) {
		for i, s := range stmts {
			region[s] = path
			sub := fmt.Sprintf("%s/%d", path, i)
			switch s := s.(type) {
			case *lang.IfStmt:
				mark(s.Then, sub+"t")
				for j, arm := range s.Elifs {
					mark(arm.Body, fmt.Sprintf("%s_e%d", sub, j))
				}
				mark(s.Else, sub+"e")
			case *lang.DoStmt:
				mark(s.Body, sub+"d")
			case *lang.WhileStmt:
				mark(s.Body, sub+"w")
			}
		}
	}
	mark(u.Body, "")

	labels := c.info.Labels[u]
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		g, ok := s.(*lang.GotoStmt)
		if !ok {
			return true
		}
		target, ok := labels[g.Target]
		if !ok {
			return true // already reported
		}
		gr, tr := region[g], region[target]
		// Legal iff target's region is a prefix of the goto's region
		// (same list or enclosing list).
		if !strings.HasPrefix(gr, tr) {
			c.errorf(g.Pos(), "goto %d jumps into a nested block", g.Target)
		}
		return true
	})
}

func (c *checker) checkCallGraph() {
	// Detect mutual recursion with a DFS over call edges.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var visit func(u *lang.Unit) bool
	visit = func(u *lang.Unit) bool {
		switch state[u.Name] {
		case grey:
			c.errorf(u.NamePos, "subroutine %q is recursive (possibly mutually); recursion is not supported", u.Name)
			return false
		case black:
			return true
		}
		state[u.Name] = grey
		for _, callee := range c.info.Calls[u] {
			if cu := c.prog.Unit(callee); cu != nil {
				if !visit(cu) {
					break
				}
			}
		}
		state[u.Name] = black
		return true
	}
	for _, u := range c.prog.Units() {
		visit(u)
	}
}

// typeOrInvalid is used for error recovery: on a type error we report and
// continue with TInteger.
const invalidRecoveryType = lang.TInteger

func (c *checker) checkLvalue(sc *Scope, e lang.Expr) lang.BasicType {
	switch e := e.(type) {
	case *lang.Ident:
		sym := sc.Lookup(e.Name)
		if sym == nil {
			c.errorf(e.NamePos, "undeclared variable %q", e.Name)
			return invalidRecoveryType
		}
		if sym.Kind == ParamSym {
			c.errorf(e.NamePos, "cannot assign to constant %q", e.Name)
			return sym.Type
		}
		if sym.Kind == ArraySym {
			c.errorf(e.NamePos, "cannot assign to whole array %q", e.Name)
			return sym.Type
		}
		return sym.Type
	case *lang.ArrayRef:
		sym := sc.Lookup(e.Name)
		if sym == nil {
			c.errorf(e.NamePos, "undeclared array %q", e.Name)
			return invalidRecoveryType
		}
		if sym.Kind != ArraySym {
			c.errorf(e.NamePos, "%q is not an array", e.Name)
			return sym.Type
		}
		if len(e.Args) != len(sym.Dims) {
			c.errorf(e.NamePos, "array %q has %d dimensions, subscripted with %d", e.Name, len(sym.Dims), len(e.Args))
		}
		for _, a := range e.Args {
			c.requireInteger(sc, a)
		}
		return sym.Type
	}
	c.errorf(e.Pos(), "invalid assignment target")
	return invalidRecoveryType
}

func (c *checker) checkExpr(sc *Scope, e lang.Expr) lang.BasicType {
	switch e := e.(type) {
	case *lang.IntLit:
		return lang.TInteger
	case *lang.RealLit:
		return lang.TReal
	case *lang.BoolLit:
		return lang.TLogical
	case *lang.StrLit:
		// Strings are only printable; give them logical type so any
		// arithmetic use errors out.
		return lang.TLogical
	case *lang.Ident:
		sym := sc.Lookup(e.Name)
		if sym == nil {
			c.errorf(e.NamePos, "undeclared variable %q", e.Name)
			return invalidRecoveryType
		}
		if sym.Kind == ArraySym {
			c.errorf(e.NamePos, "array %q used without subscripts", e.Name)
		}
		return sym.Type
	case *lang.ArrayRef:
		return c.checkRefOrIntrinsic(sc, e)
	case *lang.Unary:
		xt := c.checkExpr(sc, e.X)
		if e.Op == lang.OpNot {
			if xt != lang.TLogical {
				c.errorf(e.Pos(), "operand of 'not' must be logical")
			}
			return lang.TLogical
		}
		if xt == lang.TLogical {
			c.errorf(e.Pos(), "cannot negate a logical value")
			return invalidRecoveryType
		}
		return xt
	case *lang.Binary:
		xt := c.checkExpr(sc, e.X)
		yt := c.checkExpr(sc, e.Y)
		switch {
		case e.Op.IsLogical():
			if xt != lang.TLogical || yt != lang.TLogical {
				c.errorf(e.Pos(), "operands of %s must be logical", e.Op)
			}
			return lang.TLogical
		case e.Op.IsComparison():
			if xt == lang.TLogical || yt == lang.TLogical {
				if xt != yt {
					c.errorf(e.Pos(), "cannot compare logical and numeric values")
				} else if e.Op != lang.OpEq && e.Op != lang.OpNe {
					c.errorf(e.Pos(), "logical values only support == and !=")
				}
			}
			return lang.TLogical
		default: // arithmetic
			if xt == lang.TLogical || yt == lang.TLogical {
				c.errorf(e.Pos(), "logical operand of arithmetic %s", e.Op)
				return invalidRecoveryType
			}
			if xt == lang.TReal || yt == lang.TReal {
				return lang.TReal
			}
			return lang.TInteger
		}
	}
	c.errorf(e.Pos(), "invalid expression")
	return invalidRecoveryType
}

func (c *checker) checkRefOrIntrinsic(sc *Scope, e *lang.ArrayRef) lang.BasicType {
	if sym := sc.Lookup(e.Name); sym != nil {
		if sym.Kind != ArraySym {
			c.errorf(e.NamePos, "%q is not an array", e.Name)
			return sym.Type
		}
		if len(e.Args) != len(sym.Dims) {
			c.errorf(e.NamePos, "array %q has %d dimensions, subscripted with %d", e.Name, len(sym.Dims), len(e.Args))
		}
		for _, a := range e.Args {
			c.requireInteger(sc, a)
		}
		return sym.Type
	}
	intr, ok := Intrinsics[e.Name]
	if !ok {
		c.errorf(e.NamePos, "undeclared array or unknown intrinsic %q", e.Name)
		return invalidRecoveryType
	}
	e.Intrinsic = true
	n := len(e.Args)
	if n < intr.MinArgs || (intr.MaxArgs >= 0 && n > intr.MaxArgs) {
		c.errorf(e.NamePos, "intrinsic %q: wrong number of arguments (%d)", e.Name, n)
	}
	argTypes := make([]lang.BasicType, 0, n)
	for _, a := range e.Args {
		t := c.checkExpr(sc, a)
		if t == lang.TLogical {
			c.errorf(a.Pos(), "intrinsic %q: logical argument", e.Name)
		}
		argTypes = append(argTypes, t)
	}
	switch e.Name {
	case "mod":
		if len(argTypes) == 2 && (argTypes[0] == lang.TReal || argTypes[1] == lang.TReal) {
			return lang.TReal
		}
		return lang.TInteger
	case "min", "max", "abs":
		for _, t := range argTypes {
			if t == lang.TReal {
				return lang.TReal
			}
		}
		return lang.TInteger
	case "int":
		return lang.TInteger
	default: // sqrt, sin, cos, exp, log, real
		return lang.TReal
	}
}

func (c *checker) requireLogical(sc *Scope, e lang.Expr) {
	if t := c.checkExpr(sc, e); t != lang.TLogical {
		c.errorf(e.Pos(), "condition must be logical, got %s", t)
	}
}

func (c *checker) requireInteger(sc *Scope, e lang.Expr) {
	if t := c.checkExpr(sc, e); t != lang.TInteger {
		c.errorf(e.Pos(), "expression must be integer, got %s", t)
	}
}

func (c *checker) requireAssignable(pos lang.Pos, lt, rt lang.BasicType) {
	switch {
	case lt == rt:
	case lt == lang.TReal && rt == lang.TInteger: // implicit widening
	case lt == lang.TInteger && rt == lang.TReal: // implicit truncation, Fortran-style
	default:
		c.errorf(pos, "cannot assign %s to %s", rt, lt)
	}
}
