package sem

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestGlobalsVisibleInSubroutines(t *testing.T) {
	info := mustCheck(t, `
program main
  integer n
  real x(10)
  call init
end
subroutine init
  integer i
  do i = 1, n
    x(i) = 0.0
  end do
end
`)
	sub := info.Program.Unit("init")
	if s := info.LookupIn(sub, "x"); s == nil || !s.Global || s.Kind != ArraySym {
		t.Errorf("x in init: %+v", s)
	}
	if s := info.LookupIn(sub, "i"); s == nil || s.Global {
		t.Errorf("i should be local: %+v", s)
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	info := mustCheck(t, `
program main
  integer i
  call s
end
subroutine s
  real i
  i = 1.5
end
`)
	sub := info.Program.Unit("s")
	if s := info.LookupIn(sub, "i"); s == nil || s.Global || s.Type != lang.TReal {
		t.Errorf("i in s: %+v", s)
	}
	if s := info.LookupIn(info.Program.Main, "i"); s == nil || !s.Global || s.Type != lang.TInteger {
		t.Errorf("i in main: %+v", s)
	}
}

func TestParamResolution(t *testing.T) {
	info := mustCheck(t, `
program main
  param n = 10
  param m = n * 2 + 1
  real x(m)
  x(1) = 0.0
end
`)
	x := info.Globals["x"]
	if x == nil || len(x.Dims) != 1 || x.Dims[0] != (Dim{1, 21}) {
		t.Errorf("x dims: %+v", x)
	}
	if info.Globals["m"].Value != 21 {
		t.Errorf("m = %d, want 21", info.Globals["m"].Value)
	}
}

func TestArrayBounds(t *testing.T) {
	info := mustCheck(t, `
program main
  real a(0:9, 5)
  a(0, 1) = 1.0
end
`)
	a := info.Globals["a"]
	if a.Dims[0] != (Dim{0, 9}) || a.Dims[1] != (Dim{1, 5}) {
		t.Errorf("dims: %+v", a.Dims)
	}
	if a.NumElems() != 50 {
		t.Errorf("NumElems = %d, want 50", a.NumElems())
	}
}

func TestIntrinsicMarking(t *testing.T) {
	info := mustCheck(t, `
program main
  integer i, j
  real x(10)
  i = mod(j, 3) + min(i, j)
  x(1) = sqrt(x(2))
end
`)
	var intrinsics []string
	lang.WalkStmts(info.Program.Main.Body, func(s lang.Stmt) bool {
		lang.StmtExprs(s, func(e lang.Expr) {
			lang.WalkExpr(e, func(e lang.Expr) bool {
				if ar, ok := e.(*lang.ArrayRef); ok && ar.Intrinsic {
					intrinsics = append(intrinsics, ar.Name)
				}
				return true
			})
		})
		return true
	})
	if len(intrinsics) != 3 {
		t.Errorf("marked intrinsics: %v, want [mod min sqrt]", intrinsics)
	}
}

func TestCallGraphOrder(t *testing.T) {
	info := mustCheck(t, `
program main
  call a
end
subroutine a
  call b
end
subroutine b
  return
end
`)
	order := info.CalleeOrder()
	pos := map[string]int{}
	for i, u := range order {
		pos[u.Name] = i
	}
	if !(pos["b"] < pos["a"] && pos["a"] < pos["main"]) {
		t.Errorf("order: %v", pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"undeclared", "program p\n x = 1\nend\n", "undeclared"},
		{"redeclared", "program p\n integer x\n real x\n x = 1\nend\n", "redeclared"},
		{"arity", "program p\n real a(2,2)\n a(1) = 0.0\nend\n", "dimensions"},
		{"wholeArray", "program p\n real a(2)\n a = 0.0\nend\n", "whole array"},
		{"assignConst", "program p\n param n = 1\n n = 2\nend\n", "constant"},
		{"noSuchSub", "program p\n call nada\nend\n", "undefined subroutine"},
		{"recursion", "program p\n call a\nend\nsubroutine a\n call a\nend\n", "recursive"},
		{"mutualRecursion", "program p\n call a\nend\nsubroutine a\n call b\nend\nsubroutine b\n call a\nend\n", "recursive"},
		{"badLabel", "program p\n goto 99\nend\n", "no such label"},
		{"gotoIntoLoop", "program p\n integer i\n goto 10\n do i = 1, 2\n10 continue\n end do\nend\n", "nested block"},
		{"loopVarReal", "program p\n real r\n do r = 1, 2\n continue\n end do\nend\n", "integer scalar"},
		{"logicalCond", "program p\n integer i\n if (i + 1) then\n continue\n end if\nend\n", "logical"},
		{"logicalArith", "program p\n logical q\n integer i\n i = 1 + (q and q)\nend\n", "logical operand"},
		{"realSubscript", "program p\n real a(5), r\n a(r) = 1.0\nend\n", "integer"},
		{"nonConstDim", "program p\n integer n\n real a(n)\n n = 1\nend\n", "constant"},
		{"dupLabel", "program p\n10 continue\n10 continue\nend\n", "already used"},
		{"badIntrinsicArity", "program p\n integer i\n i = mod(i)\nend\n", "number of arguments"},
		{"shadowIntrinsic", "program p\n real mod(10)\n mod(1) = 0.0\nend\n", "shadows an intrinsic"},
		{"emptyDim", "program p\n real a(5:1)\n a(1) = 0.0\nend\n", "empty dimension"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErr(t, c.src, c.frag) })
	}
}

func TestGotoBackwardOutOfLoopOK(t *testing.T) {
	mustCheck(t, `
program p
  integer i, n
10 continue
  do i = 1, n
    if (i == 3) goto 20
  end do
  goto 10
20 continue
end
`)
}

func TestTypePropagation(t *testing.T) {
	// int/real mixing allowed; checked implicitly by absence of errors.
	mustCheck(t, `
program p
  integer i
  real x
  x = i + 1
  i = x * 2.0
  x = i / 2
end
`)
}

func TestCallsDeduplicated(t *testing.T) {
	info := mustCheck(t, `
program main
  call a
  call a
  call b
end
subroutine a
end
subroutine b
end
`)
	calls := info.Calls[info.Program.Main]
	if len(calls) != 2 || calls[0] != "a" || calls[1] != "b" {
		t.Errorf("calls: %v", calls)
	}
}

func TestScopeNames(t *testing.T) {
	info := mustCheck(t, `
program main
  integer g
  call s
end
subroutine s
  integer l
  l = g
end
`)
	names := info.Scope(info.Program.Unit("s")).Names()
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	if !has("g") || !has("l") {
		t.Errorf("names: %v", names)
	}
}

func TestCalleeOrderDiamond(t *testing.T) {
	info := mustCheck(t, `
program main
  call a
  call b
end
subroutine a
  call c
end
subroutine b
  call c
end
subroutine c
end
`)
	order := info.CalleeOrder()
	pos := map[string]int{}
	for i, u := range order {
		pos[u.Name] = i
	}
	if !(pos["c"] < pos["a"] && pos["c"] < pos["b"] && pos["a"] < pos["main"] && pos["b"] < pos["main"]) {
		t.Errorf("diamond order: %v", pos)
	}
	if len(order) != 4 {
		t.Errorf("units visited: %d", len(order))
	}
}

func TestSymbolHelpers(t *testing.T) {
	info := mustCheck(t, `
program main
  param k = 3
  real a(2, 0:4)
  a(1, 0) = 1.0
end
`)
	a := info.Globals["a"]
	if a.NumElems() != 10 {
		t.Errorf("NumElems = %d", a.NumElems())
	}
	if a.Dims[1].Size() != 5 {
		t.Errorf("dim size = %d", a.Dims[1].Size())
	}
	k := info.Globals["k"]
	if k.Kind != ParamSym || k.Value != 3 {
		t.Errorf("param: %+v", k)
	}
	if ScalarSym.String() != "scalar" || ArraySym.String() != "array" || ParamSym.String() != "param" {
		t.Error("kind strings")
	}
}
