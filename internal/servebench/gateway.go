package servebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/gateway"
	"repro/internal/server"
)

// GatewayReportSchema identifies the JSON layout of the irrgw
// measurement document (BENCH_gateway.json).
const GatewayReportSchema = "irr-gateway/1"

// GatewayReport is the payload of `irrbench -gateway-load`: throughput as
// the backend count scales, whether consistent-hash affinity preserves
// irrd's cache hit rate across a fleet, byte-identity of proxied
// responses, and availability when a backend is killed under load.
type GatewayReport struct {
	Schema      string `json:"schema"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	CorpusKeys  int    `json:"corpus_keys"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// SingleCoreCaveat flags runs where backends, gateway and clients all
	// share one core, so throughput-vs-M cannot show real scaling.
	SingleCoreCaveat bool `json:"single_core_caveat"`

	// Throughput over a warm corpus as the fleet grows.
	Scaling []GatewayScalePoint `json:"scaling"`

	// Affinity over the largest fleet.
	AffinityPreserved bool    `json:"affinity_preserved"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	ByteIdentical     bool    `json:"byte_identical"`

	// Kill-one-backend availability (largest fleet, load running).
	KillRequests  int   `json:"kill_requests"`
	KillFailures  int64 `json:"kill_failures"`
	KillRetries   int64 `json:"kill_retries"`
	KilledEjected bool  `json:"killed_ejected"`
}

// GatewayScalePoint is one fleet size's warm throughput.
type GatewayScalePoint struct {
	Backends int     `json:"backends"`
	RPS      float64 `json:"rps"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
}

// gwFleet is M in-process irrd backends behind an in-process irrgw, all
// on real listeners so the measurement includes the HTTP hops.
type gwFleet struct {
	backends []*httptest.Server
	gw       *gateway.Gateway
	gts      *httptest.Server
	hc       *http.Client
	client   *api.Client
}

func newGWFleet(m int) (*gwFleet, error) {
	f := &gwFleet{hc: &http.Client{Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
	}}}
	urls := make([]string, m)
	for i := 0; i < m; i++ {
		ts := httptest.NewServer(server.New(server.Config{}))
		f.backends = append(f.backends, ts)
		urls[i] = ts.URL
	}
	gw, err := gateway.New(gateway.Config{
		Backends:      urls,
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 2,
		PassThreshold: 2,
		RetryBase:     2 * time.Millisecond,
		RetryMax:      20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	gw.Start()
	f.gw = gw
	f.gts = httptest.NewServer(gw)
	f.client = api.NewClient(f.gts.URL, api.WithHTTPClient(f.hc))
	return f, nil
}

func (f *gwFleet) close() {
	f.gts.Close()
	f.gw.Close()
	for _, ts := range f.backends {
		ts.Close()
	}
	f.hc.CloseIdleConnections()
}

// compile posts one body through the gateway, returning latency, the
// serving backend and the raw response.
func (f *gwFleet) compile(body []byte) (time.Duration, string, []byte, error) {
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := f.client.Forward(context.Background(), "POST", "/v1/compile", body, hdr)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	d := time.Since(t0)
	if err != nil {
		return 0, "", nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", nil, fmt.Errorf("gateway compile: status %d: %s", resp.StatusCode, data)
	}
	return d, resp.Header.Get(api.BackendHeader), data, nil
}

// corpus builds k distinct compile bodies (distinct affinity keys) that
// each compile in a few milliseconds.
func gwCorpus(k int) ([][]byte, error) {
	out := make([][]byte, k)
	for i := range out {
		src := fmt.Sprintf(`
program c%d
  param n = %d
  real a(n), b(n)
  integer i
  integer x(n)
  do i = 1, n
    x(i) = mod(i * 7, n) + 1
  end do
  do i = 1, n
    b(i) = real(i)
  end do
  do i = 1, n
    a(x(i)) = a(x(i)) + b(i)
  end do
  print "done", a(1)
end
`, i, 48+i)
		body, err := json.Marshal(map[string]string{"src": src})
		if err != nil {
			return nil, err
		}
		out[i] = body
	}
	return out, nil
}

// MeasureGatewayLoad boots fleets of 1..maxBackends in-process irrd
// instances behind irrgw and measures: warm throughput per fleet size,
// affinity (every corpus key served by exactly one backend, warm repeats
// all cache hits), byte-identity of a proxied response against the
// backend that served it, and the kill-one-backend drill — SIGKILL
// semantics via hard listener close mid-load, asserting zero
// client-visible failures. requests < 1 defaults to 400, conc < 1 to
// 2*GOMAXPROCS, maxBackends < 1 to 3.
func MeasureGatewayLoad(requests, conc, maxBackends int) (*GatewayReport, error) {
	if requests < 1 {
		requests = 400
	}
	if conc < 1 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	if maxBackends < 1 {
		maxBackends = 3
	}
	rep := &GatewayReport{
		Schema:           GatewayReportSchema,
		Requests:         requests,
		Concurrency:      conc,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		SingleCoreCaveat: runtime.GOMAXPROCS(0) == 1,
	}
	corpus, err := gwCorpus(16)
	if err != nil {
		return nil, err
	}
	rep.CorpusKeys = len(corpus)

	// Phase 1: warm throughput per fleet size.
	for m := 1; m <= maxBackends; m++ {
		f, err := newGWFleet(m)
		if err != nil {
			return nil, err
		}
		point, err := f.scalePoint(corpus, requests, conc, m)
		f.close()
		if err != nil {
			return nil, fmt.Errorf("fleet of %d: %w", m, err)
		}
		rep.Scaling = append(rep.Scaling, *point)
	}

	// Phase 2: affinity, hit rate and byte-identity on the largest fleet.
	f, err := newGWFleet(maxBackends)
	if err != nil {
		return nil, err
	}
	defer f.close()
	if err := f.affinity(corpus, conc, rep); err != nil {
		return nil, fmt.Errorf("affinity phase: %w", err)
	}

	// Phase 3: kill one backend under load on a fresh fleet.
	kf, err := newGWFleet(maxBackends)
	if err != nil {
		return nil, err
	}
	defer kf.close()
	if err := kf.killDrill(corpus, requests, conc, rep); err != nil {
		return nil, fmt.Errorf("kill phase: %w", err)
	}
	return rep, nil
}

// scalePoint primes the corpus (one compile per key) and then measures
// warm throughput: requests spread over the corpus keys from conc
// workers.
func (f *gwFleet) scalePoint(corpus [][]byte, requests, conc, m int) (*GatewayScalePoint, error) {
	for _, body := range corpus {
		if _, _, _, err := f.compile(body); err != nil {
			return nil, err
		}
	}
	lat := make([]int64, requests)
	var errCount atomic.Int64
	var firstErr atomic.Value
	idx := make(chan int)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				d, _, _, err := f.compile(corpus[i%len(corpus)])
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				lat[i] = int64(d)
			}
		}()
	}
	for i := 0; i < requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(t0)
	if n := errCount.Load(); n > 0 {
		return nil, fmt.Errorf("%d/%d requests failed: %v", n, requests, firstErr.Load())
	}
	durs := make([]time.Duration, len(lat))
	for i, v := range lat {
		durs[i] = time.Duration(v)
	}
	sortDurations(durs)
	return &GatewayScalePoint{
		Backends: m,
		RPS:      float64(requests) / wall.Seconds(),
		P50Ns:    pct(durs, 0.50),
		P99Ns:    pct(durs, 0.99),
	}, nil
}

// affinity replays every corpus key several times and checks each key is
// pinned to exactly one backend with a warm cache, then byte-compares a
// gateway response against the serving backend directly.
func (f *gwFleet) affinity(corpus [][]byte, conc int, rep *GatewayReport) error {
	const repeats = 4
	home := make([]map[string]bool, len(corpus))
	for i := range home {
		home[i] = map[string]bool{}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(corpus)*repeats)
	sem := make(chan struct{}, conc)
	for r := 0; r < repeats; r++ {
		for i, body := range corpus {
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				_, backend, _, err := f.compile(body)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				home[i][backend] = true
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	rep.AffinityPreserved = true
	for _, backends := range home {
		if len(backends) != 1 {
			rep.AffinityPreserved = false
		}
	}

	// Aggregate the fleet's cache counters: with perfect affinity the
	// corpus misses once per key and hits everywhere else.
	var hits, misses int64
	for _, ts := range f.backends {
		cnt, err := api.NewClient(ts.URL, api.WithHTTPClient(f.hc)).Counters(context.Background())
		if err != nil {
			return err
		}
		hits += cnt["rescache_hits_total"]
		misses += cnt["rescache_misses_total"]
	}
	if total := hits + misses; total > 0 {
		rep.CacheHitRate = float64(hits) / float64(total)
	}

	// Byte-identity: same fixed request ID through the gateway and
	// directly to the backend that served it.
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	hdr.Set(api.RequestIDHeader, "irr-gateway-bytes")
	resp, err := f.client.Forward(context.Background(), "POST", "/v1/compile", corpus[0], hdr)
	if err != nil {
		return err
	}
	viaGW, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	served := resp.Header.Get(api.BackendHeader)
	for _, ts := range f.backends {
		if "http://"+served != ts.URL {
			continue
		}
		direct, err := api.NewClient(ts.URL, api.WithHTTPClient(f.hc)).
			Forward(context.Background(), "POST", "/v1/compile", corpus[0], hdr)
		if err != nil {
			return err
		}
		directBody, _ := io.ReadAll(direct.Body)
		direct.Body.Close()
		rep.ByteIdentical = string(viaGW) == string(directBody)
	}
	return nil
}

// killDrill drives conc workers over the corpus and hard-kills one
// backend (listener close + connection reset — SIGKILL semantics for an
// in-process fleet) a third of the way in. Every client request must
// still succeed; the gateway's retry counters and the ejection gauge
// record how.
func (f *gwFleet) killDrill(corpus [][]byte, requests, conc int, rep *GatewayReport) error {
	for _, body := range corpus {
		if _, _, _, err := f.compile(body); err != nil {
			return err
		}
	}
	rep.KillRequests = requests
	var failures atomic.Int64
	var killed atomic.Bool
	killAt := requests / 3
	victim := f.backends[len(f.backends)-1]
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if i == killAt && killed.CompareAndSwap(false, true) {
					victim.Listener.Close()
					victim.CloseClientConnections()
				}
				if _, _, _, err := f.compile(corpus[i%len(corpus)]); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	rep.KillFailures = failures.Load()

	// Read the gateway's own counters for retries and the ejection.
	cnt, err := f.client.Counters(context.Background())
	if err != nil {
		return err
	}
	rep.KillRetries = cnt["irrgw_retries_total"]
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if f.gw.Live() < len(f.backends) {
			rep.KilledEjected = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}
