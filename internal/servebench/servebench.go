package servebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/server"
)

// ServeLoadReportSchema identifies the JSON layout of the irrd
// cache/coalescing measurement document (BENCH_cache.json).
const ServeLoadReportSchema = "irr-servecache/1"

// ServeLoadReport records the cold-vs-warm latency of irrd's
// cross-request compilation cache, the coalescing behaviour under a
// concurrent identical burst, and the byte-identity check of cached
// responses — the payload of `irrbench -serve-load`.
type ServeLoadReport struct {
	Schema      string `json:"schema"`
	Kernel      string `json:"kernel"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Cold: every request compiles (cache disabled).
	ColdRequests int   `json:"cold_requests"`
	ColdP50Ns    int64 `json:"cold_p50_ns"`
	ColdP99Ns    int64 `json:"cold_p99_ns"`

	// Warm: cache enabled and primed; every request is a hit.
	WarmP50Ns         int64   `json:"warm_p50_ns"`
	WarmP99Ns         int64   `json:"warm_p99_ns"`
	WarmThroughputRPS float64 `json:"warm_throughput_rps"`
	SpeedupP50        float64 `json:"speedup_p50_x"`

	// Cache counters after the warm phase.
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`

	// Coalescing: a burst of identical requests against an empty cache.
	BurstSize     int     `json:"burst_size"`
	Coalesced     int64   `json:"coalesced"`
	CoalescedRate float64 `json:"coalesced_rate"`
	BurstCompiles int64   `json:"burst_compiles"`
	ByteIdentical bool    `json:"byte_identical"`
	ResponseBytes int     `json:"response_bytes"`
}

// serveClient drives one irrd instance over its httptest listener via
// the typed api.Client. It keeps its own connection pool, sized so a
// concurrent burst does not serialize on dials; raw response bytes come
// through Forward so byte-identity checks see exactly the wire payload.
type serveClient struct {
	ts   *httptest.Server
	api  *api.Client
	hc   *http.Client
	body string
}

func newServeClient(cacheBytes int64, kernel string) *serveClient {
	srv := server.New(server.Config{CacheBytes: cacheBytes})
	ts := httptest.NewServer(srv)
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
	}}
	return &serveClient{
		ts:   ts,
		api:  api.NewClient(ts.URL, api.WithHTTPClient(hc)),
		hc:   hc,
		body: fmt.Sprintf(`{"kernel":%q}`, kernel),
	}
}

func (c *serveClient) close() {
	c.hc.CloseIdleConnections()
	c.ts.Close()
}

// compileOnce posts one compile request and returns its latency and body.
// An empty body posts the client's default kernel request.
func (c *serveClient) compileOnce(reqID, body string) (time.Duration, []byte, error) {
	if body == "" {
		body = c.body
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	if reqID != "" {
		hdr.Set(api.RequestIDHeader, reqID)
	}
	t0 := time.Now()
	resp, err := c.api.Forward(context.Background(), "POST", "/v1/compile", []byte(body), hdr)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	d := time.Since(t0)
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("compile: status %d: %s", resp.StatusCode, data)
	}
	return d, data, nil
}

// counters reads the irrd-metrics/2 JSON document's counter map.
func (c *serveClient) counters() (map[string]int64, error) {
	return c.api.Counters(context.Background())
}

// fanOut issues n requests over conc workers and returns the sorted
// per-request latencies plus the wall-clock of the whole run.
func (c *serveClient) fanOut(n, conc int) ([]time.Duration, time.Duration, error) {
	if conc > n {
		conc = n
	}
	lat := make([]time.Duration, n)
	errs := make([]error, conc)
	idx := make(chan int)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				d, _, err := c.compileOnce("", "")
				if err != nil {
					errs[w] = err
					continue
				}
				lat[i] = d
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat, wall, nil
}

func pct(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return int64(sorted[i])
}

// MeasureServeLoad boots throwaway irrd instances and measures the
// cross-request cache end to end: cold latency (cache off), warm latency
// and throughput (cache primed), the coalescing rate of a concurrent
// identical burst against an empty cache, and whether a cached response
// is byte-identical to the original. requests < 1 defaults to 500,
// conc < 1 to 2*GOMAXPROCS. The cold phase is capped at 100 requests —
// it exists to anchor the speedup, not to burn CPU.
func MeasureServeLoad(kernel string, requests, conc int) (*ServeLoadReport, error) {
	if requests < 1 {
		requests = 500
	}
	if conc < 1 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	rep := &ServeLoadReport{
		Schema:      ServeLoadReportSchema,
		Kernel:      kernel,
		Requests:    requests,
		Concurrency: conc,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// Cold: every request compiles.
	cold := newServeClient(-1, kernel)
	rep.ColdRequests = requests
	if rep.ColdRequests > 100 {
		rep.ColdRequests = 100
	}
	lat, _, err := cold.fanOut(rep.ColdRequests, conc)
	cold.close()
	if err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}
	rep.ColdP50Ns, rep.ColdP99Ns = pct(lat, 0.50), pct(lat, 0.99)

	// Warm: prime once, then every request hits.
	warm := newServeClient(0, kernel)
	defer warm.close()
	if _, _, err := warm.compileOnce("", ""); err != nil {
		return nil, fmt.Errorf("warm prime: %w", err)
	}
	lat, wall, err := warm.fanOut(requests, conc)
	if err != nil {
		return nil, fmt.Errorf("warm phase: %w", err)
	}
	rep.WarmP50Ns, rep.WarmP99Ns = pct(lat, 0.50), pct(lat, 0.99)
	rep.WarmThroughputRPS = float64(requests) / wall.Seconds()
	if rep.WarmP50Ns > 0 {
		rep.SpeedupP50 = float64(rep.ColdP50Ns) / float64(rep.WarmP50Ns)
	}
	cnt, err := warm.counters()
	if err != nil {
		return nil, err
	}
	rep.CacheHits = cnt["rescache_hits_total"]
	rep.CacheMisses = cnt["rescache_misses_total"]
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(total)
	}

	// Byte-identity: a fixed request ID makes the only legitimate
	// response difference disappear; the cached body must match the
	// fresh one exactly.
	fresh := newServeClient(0, kernel)
	defer fresh.close()
	_, first, err := fresh.compileOnce("irr-servecache", "")
	if err != nil {
		return nil, err
	}
	_, second, err := fresh.compileOnce("irr-servecache", "")
	if err != nil {
		return nil, err
	}
	rep.ByteIdentical = string(first) == string(second)
	rep.ResponseBytes = len(first)

	// Coalescing: one concurrent identical burst against a key the cache
	// has never seen. The bundled kernels compile in single-digit
	// milliseconds — too narrow a window for followers to reliably arrive
	// in-flight on a loaded single-core host — so the burst compiles a
	// synthetic many-loop program whose interprocedural analysis takes
	// long enough that every follower parks on the leader's flight. The
	// kernel requests beforehand fill the connection pool, so the burst
	// itself does not serialize on TCP dials.
	burst := newServeClient(0, kernel)
	defer burst.close()
	rep.BurstSize = conc * 4
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			burst.compileOnce("", "") //nolint:errcheck // pool warm-up only
		}()
	}
	wg.Wait()
	heavy, err := json.Marshal(map[string]string{"src": burstSource(50)})
	if err != nil {
		return nil, err
	}
	burstErrs := make([]error, rep.BurstSize)
	for i := 0; i < rep.BurstSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, burstErrs[i] = burst.compileOnce("", string(heavy))
		}()
	}
	wg.Wait()
	for _, err := range burstErrs {
		if err != nil {
			return nil, fmt.Errorf("burst phase: %w", err)
		}
	}
	cnt, err = burst.counters()
	if err != nil {
		return nil, err
	}
	rep.Coalesced = cnt["rescache_coalesced_total"]
	rep.BurstCompiles = cnt["rescache_misses_total"] - 1 // minus the kernel warm-up miss
	rep.CoalescedRate = float64(rep.Coalesced) / float64(rep.BurstSize)
	return rep, nil
}

// burstSource generates an F-lite program of `loops` irregular
// reduction-loop pairs over distinct arrays. Compilation cost grows
// superlinearly with the loop count (the interprocedural property
// analysis visits every loop pair), which makes the compile window wide
// enough for the coalescing measurement: ~200ms at 50 loops on one core.
func burstSource(loops int) string {
	var b strings.Builder
	b.WriteString("program burst\n  param n = 64\n")
	for i := 0; i < loops; i++ {
		fmt.Fprintf(&b, "  real a%d(n), b%d(n)\n", i, i)
	}
	b.WriteString("  integer i\n  integer x(n)\n")
	b.WriteString("  do i = 1, n\n    x(i) = mod(i * 7, n) + 1\n  end do\n")
	for i := 0; i < loops; i++ {
		fmt.Fprintf(&b, "  do i = 1, n\n    b%d(i) = real(i)\n  end do\n", i)
		fmt.Fprintf(&b, "  do i = 1, n\n    a%d(x(i)) = a%d(x(i)) + b%d(i)\n  end do\n", i, i, i)
	}
	b.WriteString("  print \"done\", a0(1)\nend\n")
	return b.String()
}
