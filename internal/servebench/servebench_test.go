package servebench

import "testing"

// TestMeasureServeLoadSmoke runs a scaled-down measurement end to end and
// checks the report's structural invariants. The performance assertions
// (warm >= 5x cold, coalescing observed) live in CI's serve-load step,
// where the run is long enough for stable numbers.
func TestMeasureServeLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots several irrd instances")
	}
	rep, err := MeasureServeLoad("p3m", 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ServeLoadReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.ColdP50Ns <= 0 || rep.WarmP50Ns <= 0 {
		t.Errorf("non-positive percentiles: cold p50 %d, warm p50 %d", rep.ColdP50Ns, rep.WarmP50Ns)
	}
	if rep.CacheHits < int64(rep.Requests) {
		t.Errorf("cache hits = %d, want >= %d (warm phase is all hits)", rep.CacheHits, rep.Requests)
	}
	if !rep.ByteIdentical {
		t.Error("cached response was not byte-identical to the original")
	}
	if rep.Coalesced+rep.BurstCompiles < 1 {
		t.Errorf("burst accounted for nothing: coalesced %d, compiles %d", rep.Coalesced, rep.BurstCompiles)
	}
	if rep.WarmThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.WarmThroughputRPS)
	}
}

// TestMeasureGatewayLoadSmoke runs the gateway drill scaled down: 2
// fleets (1 and 2 backends), a small warm corpus, and the kill-one
// phase. The availability invariant — zero client-visible failures when
// a backend dies mid-load — holds at any scale, so it is asserted here
// too, not just in CI.
func TestMeasureGatewayLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots several irrd fleets")
	}
	rep, err := MeasureGatewayLoad(40, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != GatewayReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Scaling) != 2 || rep.Scaling[0].Backends != 1 || rep.Scaling[1].Backends != 2 {
		t.Fatalf("scaling points = %+v", rep.Scaling)
	}
	for _, p := range rep.Scaling {
		if p.RPS <= 0 || p.P50Ns <= 0 {
			t.Errorf("degenerate scale point %+v", p)
		}
	}
	if !rep.AffinityPreserved {
		t.Error("affinity not preserved: some corpus key was served by multiple backends")
	}
	if rep.CacheHitRate < 0.5 {
		t.Errorf("fleet cache hit rate = %v, want >= 0.5 under affinity routing", rep.CacheHitRate)
	}
	if !rep.ByteIdentical {
		t.Error("gateway response not byte-identical to the serving backend's")
	}
	if rep.KillFailures != 0 {
		t.Errorf("killing a backend surfaced %d client errors, want 0", rep.KillFailures)
	}
	if !rep.KilledEjected {
		t.Error("killed backend was never ejected")
	}
}
