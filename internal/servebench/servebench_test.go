package servebench

import "testing"

// TestMeasureServeLoadSmoke runs a scaled-down measurement end to end and
// checks the report's structural invariants. The performance assertions
// (warm >= 5x cold, coalescing observed) live in CI's serve-load step,
// where the run is long enough for stable numbers.
func TestMeasureServeLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots several irrd instances")
	}
	rep, err := MeasureServeLoad("p3m", 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ServeLoadReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.ColdP50Ns <= 0 || rep.WarmP50Ns <= 0 {
		t.Errorf("non-positive percentiles: cold p50 %d, warm p50 %d", rep.ColdP50Ns, rep.WarmP50Ns)
	}
	if rep.CacheHits < int64(rep.Requests) {
		t.Errorf("cache hits = %d, want >= %d (warm phase is all hits)", rep.CacheHits, rep.Requests)
	}
	if !rep.ByteIdentical {
		t.Error("cached response was not byte-identical to the original")
	}
	if rep.Coalesced+rep.BurstCompiles < 1 {
		t.Errorf("burst accounted for nothing: coalesced %d, compiles %d", rep.Coalesced, rep.BurstCompiles)
	}
	if rep.WarmThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.WarmThroughputRPS)
	}
}
