package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	irregular "repro"
	"repro/internal/api"
)

// rawPost sends a compile body with a fixed request ID and returns the
// raw response bytes plus the X-Irrd-Cache outcome header.
func rawPost(t *testing.T, url, path, body, reqID string) ([]byte, string, int) {
	t.Helper()
	req, err := http.NewRequest("POST", url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.Header.Get(cacheHeader), resp.StatusCode
}

// TestCacheHitByteIdentical: for every bundled kernel, the second
// identical request is a hit and its response is byte-identical to the
// first (the cached snapshot IS the first compilation, frozen). The
// deterministic portion of the document also matches a fresh
// library-level compile.
func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, kernel := range irregular.Kernels() {
		body := `{"kernel":"` + kernel + `"}`
		first, out1, code1 := rawPost(t, ts.URL, "/v1/compile", body, "det-1")
		second, out2, code2 := rawPost(t, ts.URL, "/v1/compile", body, "det-1")
		if code1 != 200 || code2 != 200 {
			t.Fatalf("%s: statuses %d, %d", kernel, code1, code2)
		}
		if out1 != "miss" || out2 != "hit" {
			t.Errorf("%s: outcomes %q, %q, want miss, hit", kernel, out1, out2)
		}
		if string(first) != string(second) {
			t.Errorf("%s: cached response differs from the original:\n%s\n---\n%s", kernel, first, second)
		}

		// Deterministic fields must equal a fresh compile's document.
		var resp api.CompileResponse
		if err := json.Unmarshal(first, &resp); err != nil {
			t.Fatal(err)
		}
		src, err := irregular.KernelSource(kernel)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := irregular.Compile(src, irregular.Options{Telemetry: true, RequestID: "det-1"})
		if err != nil {
			t.Fatal(err)
		}
		freshJSON, err := fresh.SummaryJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, want := normalizeMetrics(t, resp.Metrics), normalizeMetrics(t, freshJSON)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: cached metrics diverge from a fresh compile\ncached: %v\nfresh:  %v", kernel, got, want)
		}
	}
}

// normalizeMetrics strips the wall-clock fields (ns durations, latency
// histograms) that legitimately differ between timed runs of identical
// compilations; everything else must match exactly.
func normalizeMetrics(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "compile_ns")
	delete(m, "property_ns")
	delete(m, "histograms")
	if phases, ok := m["phases"].([]any); ok {
		for _, p := range phases {
			delete(p.(map[string]any), "ns")
		}
	}
	// The shared-analysis-cache counters describe the sharing
	// configuration (the server attaches a process-wide cache; a bare
	// library compile has none), not the compilation — the documented
	// equivalence rule excludes them.
	if counters, ok := m["counters"].(map[string]any); ok {
		delete(counters, "property.shared_hits")
		delete(counters, "property.shared_misses")
	}
	return m
}

// TestCacheSingleFlight parks concurrent identical requests on one
// in-flight compile: exactly one compilation runs, the rest coalesce or
// hit. Run with -race.
func TestCacheSingleFlight(t *testing.T) {
	const followers = 15
	s, ts := newTestServer(t, Config{MaxConcurrent: 4})
	var compiles atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	real := s.compile
	s.compile = func(ctx context.Context, src string, opts irregular.Options) (*irregular.Result, error) {
		compiles.Add(1)
		once.Do(func() { close(entered) })
		<-release
		return real(ctx, src, opts)
	}

	leaderDone := make(chan int, 1)
	go func() {
		_, _, code := rawPost(t, ts.URL, "/v1/compile", `{"kernel":"trfd"}`, "sf-leader")
		leaderDone <- code
	}()
	<-entered

	var wg sync.WaitGroup
	codes := make([]int, followers)
	outcomes := make([]string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, out, code := rawPost(t, ts.URL, "/v1/compile", `{"kernel":"trfd"}`, "sf-follower")
			codes[i], outcomes[i] = code, out
		}()
	}
	// Release only once every follower is parked on the flight, so the
	// coalescing (not just the warm hit) is exercised deterministically.
	deadline := time.Now().Add(10 * time.Second)
	for s.cache.Stats().Waiting != followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers parked on the flight", s.cache.Stats().Waiting, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if code := <-leaderDone; code != 200 {
		t.Fatalf("leader status = %d", code)
	}
	for i := range codes {
		if codes[i] != 200 {
			t.Errorf("follower %d status = %d", i, codes[i])
		}
		if outcomes[i] != "coalesced" {
			t.Errorf("follower %d outcome = %q, want coalesced", i, outcomes[i])
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Errorf("%d compilations for %d identical requests, want 1", got, followers+1)
	}
	st := s.cache.Stats()
	if st.Coalesced != followers || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want coalesced=%d misses=1", st, followers)
	}
	if got := s.rec.Counter("rescache_coalesced_total"); got != followers {
		t.Errorf("rescache_coalesced_total = %d, want %d", got, followers)
	}
}

// TestCacheEviction: a budget that holds one compilation at a time forces
// LRU eviction, visible on the counters, and an evicted key recompiles.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: 1})
	// Two distinct sources; each snapshot costs far more than 1 byte, so
	// inserting the second evicts the first (a single oversized entry is
	// kept by design).
	a := `{"src":` + mustJSON(demoSrc) + `}`
	b := `{"src":` + mustJSON(demoSrc+"! variant\n") + `}`
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", a, "ev"); out != "miss" {
		t.Fatalf("first A = %q", out)
	}
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", a, "ev"); out != "hit" {
		t.Fatalf("second A = %q", out)
	}
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", b, "ev"); out != "miss" {
		t.Fatalf("first B = %q", out)
	}
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", a, "ev"); out != "miss" {
		t.Fatalf("A after eviction = %q, want miss", out)
	}
	if got := s.rec.Counter("rescache_evictions_total"); got < 1 {
		t.Errorf("rescache_evictions_total = %d, want >= 1", got)
	}
	if st := s.cache.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (budget holds one oversized entry)", st.Entries)
	}
}

func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestCacheBypassForDebugRequests: explain/trace responses embed
// per-request event streams and must neither consult nor fill the cache.
func TestCacheBypassForDebugRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		_, out, code := rawPost(t, ts.URL, "/v1/compile", `{"kernel":"trfd","trace":true}`, "byp")
		if code != 200 || out != "bypass" {
			t.Fatalf("trace request %d: status %d, outcome %q", i, code, out)
		}
	}
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", `{"kernel":"trfd","explain":true}`, "byp"); out != "bypass" {
		t.Errorf("explain outcome = %q, want bypass", out)
	}
	if st := s.cache.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Errorf("debug requests touched the cache: %+v", st)
	}
	// A plain request afterwards is a genuine miss, then a hit.
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", `{"kernel":"trfd"}`, "byp"); out != "miss" {
		t.Errorf("plain after bypass = %q, want miss", out)
	}
}

// TestRunUsesCacheAndStaysDeterministic: the compile half of /v1/run is
// served from the cache on the second request; the simulated time is
// identical because each run executes on its own clone of the snapshot.
func TestRunUsesCacheAndStaysDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"kernel":"tree","processors":4}`
	first, out1, code1 := rawPost(t, ts.URL, "/v1/run", body, "run")
	second, out2, code2 := rawPost(t, ts.URL, "/v1/run", body, "run")
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d, %d\n%s", code1, code2, first)
	}
	if out1 != "miss" || out2 != "hit" {
		t.Errorf("outcomes %q, %q, want miss, hit", out1, out2)
	}
	if string(first) != string(second) {
		t.Errorf("cached run response differs:\n%s\n---\n%s", first, second)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(first, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Time == 0 {
		t.Error("zero simulated time")
	}
}

// TestCompileTelemetrySurvivesRunError is the regression test for the
// lost-telemetry bug: a request that compiles successfully but fails at
// run time must still land the compilation's phase histograms on
// /metrics. Exercised with the cache off (the direct path) and on (the
// compute path absorbs).
func TestCompileTelemetrySurvivesRunError(t *testing.T) {
	for _, cacheBytes := range []int64{-1, 0} {
		s, ts := newTestServer(t, Config{CacheBytes: cacheBytes})
		var env errEnvelope
		resp := post(t, ts, "/v1/run", api.RunRequest{
			CompileRequest: api.CompileRequest{Kernel: "trfd"},
			MaxSteps:       1, // the run exceeds this immediately
		}, &env)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("cacheBytes=%d: status = %d, want 413 (%v)", cacheBytes, resp.StatusCode, env.Error)
		}
		h, ok := s.rec.Histogram("phase.duration:phase=parallelize")
		if !ok || h.Count < 1 {
			t.Errorf("cacheBytes=%d: compile phase histogram missing after run error (ok=%v)", cacheBytes, ok)
		}
		if got := s.rec.Counter("property.queries"); got < 1 {
			t.Errorf("cacheBytes=%d: property.queries = %d, want >= 1 (compile counters lost)", cacheBytes, got)
		}
	}
}

// TestLintUsesCache: lint compilations cache under their own key —
// distinct from the plain compile of the same source.
func TestLintUsesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"src":` + mustJSON(demoSrc) + `}`
	if _, out, _ := rawPost(t, ts.URL, "/v1/compile", body, "lint"); out != "miss" {
		t.Fatalf("compile = %q", out)
	}
	first, out1, code1 := rawPost(t, ts.URL, "/v1/lint", body, "lint")
	second, out2, code2 := rawPost(t, ts.URL, "/v1/lint", body, "lint")
	if code1 != 200 || code2 != 200 {
		t.Fatalf("lint statuses %d, %d", code1, code2)
	}
	if out1 != "miss" || out2 != "hit" {
		t.Errorf("lint outcomes %q, %q, want miss, hit (lint keys separately)", out1, out2)
	}
	if string(first) != string(second) {
		t.Errorf("cached lint response differs:\n%s\n---\n%s", first, second)
	}
	if st := s.cache.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (compile + lint)", st.Entries)
	}
}

// TestConcurrentCachedRuns hammers /v1/run for one cached compilation
// from many goroutines; run with -race — the point is that clones of a
// shared snapshot never race.
func TestConcurrentCachedRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 8})
	body := `{"kernel":"tree","processors":4,"bounds_check_elim":true}`
	if _, _, code := rawPost(t, ts.URL, "/v1/run", body, "prime"); code != 200 {
		t.Fatalf("priming run failed: %d", code)
	}
	var wg sync.WaitGroup
	times := make([]uint64, 12)
	for i := 0; i < len(times); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _, code := rawPost(t, ts.URL, "/v1/run", body, "conc")
			if code != 200 {
				t.Errorf("run %d: status %d: %s", i, code, data)
				return
			}
			var rr api.RunResponse
			if err := json.Unmarshal(data, &rr); err != nil {
				t.Error(err)
				return
			}
			times[i] = rr.Time
		}()
	}
	wg.Wait()
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("nondeterministic cached run: times[%d]=%d, times[0]=%d", i, times[i], times[0])
		}
	}
}
