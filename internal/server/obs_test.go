package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// A client-supplied X-Request-Id is echoed on the response, returned in the
// compile body, and logged on the structured request line; a request
// without one gets a generated ID.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})

	body := `{"kernel":"trfd"}`
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compile", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "test-req-42" {
		t.Errorf("echoed %s = %q, want test-req-42", requestIDHeader, got)
	}
	var out api.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != "test-req-42" {
		t.Errorf("response request_id = %q", out.RequestID)
	}

	// The structured log line carries the ID, endpoint and status.
	var line struct {
		Msg      string `json:"msg"`
		ID       string `json:"id"`
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
	}
	found := false
	for _, raw := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, raw)
		}
		if line.ID == "test-req-42" {
			found = true
			if line.Msg != "request" || line.Endpoint != "compile" || line.Status != 200 {
				t.Errorf("log line = %+v", line)
			}
		}
	}
	if !found {
		t.Errorf("no log line with the request ID:\n%s", logBuf.String())
	}

	// Without a client ID the server generates a 16-hex-digit one.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get(requestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated ID %q is not 16 hex digits", id)
	}
}

// /debug/pprof is absent unless the operator opts in.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag: status = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with flag: status = %d, want 200", resp.StatusCode)
	}
}

// trace:true in a compile request returns a Chrome trace-event JSON array
// with the pipeline phase spans.
func TestCompileTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out api.CompileResponse
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Kernel: "trfd", Trace: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Trace) == 0 {
		t.Fatal("trace requested but absent")
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(out.Trace, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	phases := map[string]bool{}
	for _, e := range events {
		if e.Ph == "B" {
			phases[e.Name] = true
		}
	}
	if !phases["phase"] && !phases["parallelize"] && !phases["pipeline"] {
		t.Errorf("trace has no phase spans: %v", phases)
	}

	// Without trace:true the field stays empty (no debug-level cost).
	out = api.CompileResponse{}
	post(t, ts, "/v1/compile", api.CompileRequest{Kernel: "trfd"}, &out)
	if len(out.Trace) != 0 {
		t.Errorf("unrequested trace present: %s", out.Trace)
	}
}

// Finished compilations are absorbed into the process recorder: /metrics
// aggregates per-phase latency histograms across requests. Cache off, so
// every request really compiles (a cache hit compiles nothing and has
// nothing to absorb — that path is covered in cache_test.go).
func TestMetricsAggregateAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: -1})
	for i := 0; i < 2; i++ {
		if resp := post(t, ts, "/v1/compile", api.CompileRequest{Kernel: "trfd"}, nil); resp.StatusCode != 200 {
			t.Fatalf("compile %d: status %d", i, resp.StatusCode)
		}
	}
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, s.rec); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheus(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	var phaseCount, endpointCount float64
	for _, sm := range samples {
		switch sm.Name {
		case "phase_duration_seconds_count":
			if sm.Labels["phase"] == "parallelize" {
				phaseCount = sm.Value
			}
		case "irrd_request_duration_seconds_count":
			if sm.Labels["endpoint"] == "compile" {
				endpointCount = sm.Value
			}
		}
	}
	if phaseCount < 2 {
		t.Errorf("parallelize phase histogram count = %v, want >= 2 (absorbed per request)", phaseCount)
	}
	if endpointCount < 2 {
		t.Errorf("compile endpoint histogram count = %v, want >= 2", endpointCount)
	}
}

// TestAdmissionQueueDepthGauge is the regression test for the queue-depth
// gauge counting every admitted request: an instantly-admitted request
// must not touch the gauge at all (the counter name stays absent from the
// snapshot), and a parked request registers exactly while it waits.
func TestAdmissionQueueDepthGauge(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxConcurrent: 1, AdmitTimeout: 5 * time.Second})

	// Fast path: capacity is free, so admission is immediate and the gauge
	// is never written — Counters only snapshots touched names.
	release, err := s.admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, present := s.rec.Counters()["irrd_admission_queue_depth"]; present {
		t.Error("uncontended admit touched irrd_admission_queue_depth")
	}

	// Slow path: with the semaphore held, a second admit must park and the
	// gauge must read 1 exactly while it does.
	admitted := make(chan error, 1)
	go func() {
		r2, err := s.admit(context.Background(), 1)
		if err == nil {
			r2()
		}
		admitted <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.rec.Counter("irrd_admission_queue_depth") != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("gauge = %d while a request is parked, want 1",
				s.rec.Counter("irrd_admission_queue_depth"))
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-admitted; err != nil {
		t.Fatalf("parked admit failed: %v", err)
	}
	if got := s.rec.Counter("irrd_admission_queue_depth"); got != 0 {
		t.Errorf("gauge = %d after the queue drained, want 0", got)
	}
}
