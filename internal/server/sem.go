package server

import (
	"container/list"
	"context"
	"sync"
)

// weighted is a FIFO weighted semaphore: the admission-control primitive of
// the server (a stdlib-only stand-in for x/sync/semaphore). Waiters queue
// in arrival order and are woken strictly FIFO, so a heavy request (a batch,
// a large program) behind many light ones is never starved; a request whose
// context fires while queued leaves the queue without acquiring.
type weighted struct {
	size int64
	mu   sync.Mutex
	cur  int64
	wait list.List // of *waiter
}

type waiter struct {
	n     int64
	ready chan struct{} // closed when the weight has been granted
}

// newWeighted builds a semaphore admitting at most size units at once.
func newWeighted(size int64) *weighted {
	return &weighted{size: size}
}

// Acquire blocks until n units are available or ctx fires. Requests heavier
// than the whole semaphore are clamped to its size, so they admit alone
// instead of deadlocking.
func (s *weighted) Acquire(ctx context.Context, n int64) error {
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	if s.cur+n <= s.size && s.wait.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.wait.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: keep the
			// units consistent by giving them straight back.
			s.cur -= w.n
			s.notify()
		default:
			s.wait.Remove(elem)
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire takes n units without waiting; it reports false when they are
// not immediately available (or when waiters are queued — FIFO order wins
// over opportunism).
func (s *weighted) TryAcquire(n int64) bool {
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur+n <= s.size && s.wait.Len() == 0 {
		s.cur += n
		return true
	}
	return false
}

// Release returns n units and wakes the longest-waiting requests that now
// fit. It applies the same clamp as Acquire, so releasing what was
// acquired is always balanced.
func (s *weighted) Release(n int64) {
	if n > s.size {
		n = s.size
	}
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.mu.Unlock()
		panic("server: semaphore released more than held")
	}
	s.notify()
	s.mu.Unlock()
}

// notify grants queued waiters in FIFO order while they fit; callers hold
// s.mu. The scan stops at the first waiter that does not fit, preserving
// arrival order.
func (s *weighted) notify() {
	for {
		front := s.wait.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.cur+w.n > s.size {
			return
		}
		s.cur += w.n
		s.wait.Remove(front)
		close(w.ready)
	}
}
