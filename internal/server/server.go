// Package server implements irrd, the long-running compilation service: an
// HTTP/JSON front end over the public irregular API with the robustness
// layer a shared service needs — cooperative cancellation (every request
// compiles under its own deadline-carrying context), admission control (a
// weighted FIFO semaphore bounds concurrent compilations; per-request
// limits bound source bytes, query-propagation steps and simulated-machine
// steps), and isolation (a panic inside one request's compilation becomes
// that request's 500 without taking down the server).
//
// The compiler is deterministic, so the server keeps a cross-request
// compilation cache (internal/rescache): responses for identical
// (source, mode, options) requests come from a frozen snapshot of the
// first compilation, concurrent identical requests coalesce onto one
// compile (single-flight), and an LRU byte budget bounds the resident
// set. Every response carries an X-Irrd-Cache header (hit / miss /
// coalesced / bypass); debug-level explain/trace requests bypass the
// cache because their responses embed per-request event streams. Cache
// traffic is visible on /metrics as rescache_hits_total,
// rescache_misses_total, rescache_coalesced_total,
// rescache_evictions_total and the rescache_bytes / rescache_entries
// gauges.
//
// Endpoints:
//
//	POST /v1/compile  compile a program; the response embeds the
//	                  irr-metrics/1 document of the compilation
//	POST /v1/run      compile and execute on the simulated machine
//	POST /v1/lint     compile with the diagnostics phase: source lints
//	                  plus the parallelization verdict audit
//	GET  /v1/kernels  list the bundled benchmark kernels
//	GET  /healthz     liveness: "ok" plus in-flight count
//	GET  /metrics     the server's telemetry: Prometheus text exposition by
//	                  default (counters, gauges, per-endpoint / per-phase /
//	                  per-query-kind latency histograms), or the JSON
//	                  document under "Accept: application/json"
//	GET  /debug/pprof/...  the runtime profiles, only when Config.EnablePprof
//
// Every request carries a request ID: the X-Request-Id header is accepted
// from the client (or generated), echoed on the response, logged on the
// structured per-request log line, and stamped into the compilation's
// telemetry recorder. Each finished compilation's counters and latency
// histograms are absorbed into the server's process-wide recorder, so
// /metrics aggregates per-phase and per-query-kind latency across requests.
//
// The wire contract — request/response DTOs, the unified error envelope
// {"error":{"kind","message","request_id"}}, and the kind→status table
// (parse 400, analysis 422, resource limit 413, over capacity 429,
// canceled/deadline 504, internal 500) — is defined once in internal/api
// and shared with the irrgw gateway and the servebench load drivers.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	irregular "repro"
	"repro/internal/api"
	"repro/internal/comperr"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/rescache"
)

// Config bounds the service; the zero value gets sensible defaults.
type Config struct {
	// MaxConcurrent caps the total admission weight of in-flight
	// compilations (default GOMAXPROCS). A compile weighs 1; a lint
	// weighs 2 (the audit replays the program); a run admits per stage —
	// 1 for the compile (skipped on a cache hit) and 1 for the simulated
	// execution — so cached runs only consume execution capacity.
	MaxConcurrent int
	// MaxSourceBytes rejects larger programs with 413 (default 1 MiB).
	// It also bounds the accepted request body.
	MaxSourceBytes int
	// MaxQuerySteps bounds property-query propagation per compilation
	// (default 50M; <0 disables the bound).
	MaxQuerySteps int
	// MaxRunSteps caps the simulated-machine steps of /v1/run; client
	// requests are clamped to it (default 2G, the interpreter's own cap).
	MaxRunSteps uint64
	// RequestTimeout is the per-request compile/run deadline
	// (default 60s; <0 disables it).
	RequestTimeout time.Duration
	// AdmitTimeout is how long a request may queue for admission before
	// 429 (default 10s; <0 rejects immediately when at capacity).
	AdmitTimeout time.Duration
	// MaxOutputBytes truncates a run's PRINT output in the response
	// (default 64 KiB).
	MaxOutputBytes int
	// CacheBytes is the byte budget of the cross-request compilation
	// cache (default 256 MiB; <0 disables the cache). The compiler is
	// deterministic, so identical (source, mode, options) requests are
	// answered from a frozen snapshot of the first compilation;
	// concurrent identical requests coalesce onto a single compile.
	// Debug-level requests (explain/trace) always bypass it.
	CacheBytes int64
	// NoSharedAnalysisCache disables the process-wide shared analysis
	// cache (interned expressions, property verdicts) that compilations
	// below the response cache share — e.g. a /v1/lint and a /v1/compile
	// of the same source, which cache under different response keys but
	// prove identical verdicts. Verdicts never depend on it.
	NoSharedAnalysisCache bool
	// EnablePprof mounts the runtime profiling handlers under
	// /debug/pprof/. Off by default: the profiles expose internals, so the
	// operator opts in (irrd -pprof).
	EnablePprof bool
	// Logger receives one structured line per request (request id, method,
	// path, endpoint, status, duration). nil discards the log — pass
	// slog.New(slog.NewJSONHandler(os.Stderr, nil)) or similar to keep it.
	Logger *slog.Logger
}

// withDefaults resolves the zero value to the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxQuerySteps == 0 {
		c.MaxQuerySteps = 50_000_000
	} else if c.MaxQuerySteps < 0 {
		c.MaxQuerySteps = 0
	}
	if c.MaxRunSteps == 0 {
		c.MaxRunSteps = 2_000_000_000
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	} else if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = 10 * time.Second
	} else if c.AdmitTimeout < 0 {
		c.AdmitTimeout = 0
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 64 << 10
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	} else if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	return c
}

// Server is the irrd service. Construct with New; it is an http.Handler.
type Server struct {
	cfg   Config
	sem   *weighted
	rec   *obs.Recorder                        // process-wide telemetry: lock-free counters + histograms, shared across requests
	cache *rescache.Cache[*irregular.Snapshot] // cross-request compilation cache; nil when disabled
	// shared is the process-wide analysis cache every request compiles
	// against (nil when disabled): below the response cache, it lets
	// compilations with different response keys but identical programs
	// replay each other's interned expressions and property verdicts.
	shared *irregular.SharedCache
	log    *slog.Logger
	mux    *http.ServeMux

	// compile is the compilation entry point, a field so tests can inject
	// failure modes (panics, hangs) without crafting pathological source.
	compile func(ctx context.Context, src string, opts irregular.Options) (*irregular.Result, error)
}

// New builds the service with cfg resolved to its defaults.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		rec:     obs.New(),
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		compile: irregular.CompileContext,
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.sem = newWeighted(int64(s.cfg.MaxConcurrent))
	if !s.cfg.NoSharedAnalysisCache {
		s.shared = irregular.NewSharedCache()
	}
	if s.cfg.CacheBytes > 0 {
		s.cache = rescache.New(rescache.Config[*irregular.Snapshot]{
			MaxBytes: s.cfg.CacheBytes,
			Cost:     func(snap *irregular.Snapshot) int64 { return snap.Cost() },
			Rec:      s.rec,
		})
	}
	s.mux.HandleFunc("POST /v1/compile", s.guard("compile", s.handleCompile))
	s.mux.HandleFunc("POST /v1/run", s.guard("run", s.handleRun))
	s.mux.HandleFunc("POST /v1/lint", s.guard("lint", s.handleLint))
	s.mux.HandleFunc("GET /v1/kernels", s.guard("kernels", s.handleKernels))
	s.mux.HandleFunc("GET /healthz", s.guard("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.guard("metrics", s.handleMetrics))
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errCapacity marks an admission-control rejection; it is
// ErrResourceLimit-classified but maps to 429, not 413.
var errCapacity = errors.New("server at capacity")

// requestIDHeader carries the request correlation ID.
const requestIDHeader = api.RequestIDHeader

// newRequestID generates a 16-hex-digit correlation ID. It only needs to be
// unique enough to correlate log lines and traces, not unguessable.
func newRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// statusWriter captures the response status for the request log line and
// the per-endpoint metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// guard wraps every handler with the request-scoped observability and
// isolation layer:
//
//   - the request ID is accepted from X-Request-Id (or generated), echoed
//     on the response, and left on r.Header for the handler to propagate
//     into the compilation's recorder;
//   - the request is counted, timed into the per-endpoint latency
//     histogram, and logged as one structured line;
//   - panics inside the request (including inside compilation worker
//     pools, which re-panic on the dispatching goroutine) are recovered
//     into a 500 envelope, counted, and the server keeps serving.
func (s *Server) guard(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
			r.Header.Set(requestIDHeader, id)
		}
		w.Header().Set(requestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.rec.Count("irrd_requests_total", 1)
		s.rec.Count("irrd_requests_total:endpoint="+endpoint, 1)
		defer func() {
			if rec := recover(); rec != nil {
				s.rec.Count("irrd_panics_total", 1)
				s.rec.Count("irrd_errors_total:kind=internal", 1)
				api.WriteError(sw, api.KindInternal,
					fmt.Sprintf("internal error: %v", rec), id)
			}
			d := time.Since(start)
			s.rec.Observe("irrd_request_duration:endpoint="+endpoint, d)
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", d))
		}()
		h(sw, r)
	}
}

// admit takes weight units of the concurrency semaphore, waiting at most
// AdmitTimeout; the returned release function must be called exactly once.
func (s *Server) admit(ctx context.Context, weight int64) (release func(), err error) {
	if s.cfg.AdmitTimeout <= 0 {
		if !s.sem.TryAcquire(weight) {
			return nil, errCapacity
		}
	} else if !s.sem.TryAcquire(weight) {
		// Slow path only: the request actually has to park. The
		// queue-depth gauge covers just the parked wait, so a scrape
		// under light load reports zero instead of phantom queueing from
		// instantly-admitted requests.
		actx, cancel := context.WithTimeout(ctx, s.cfg.AdmitTimeout)
		defer cancel()
		s.rec.Count("irrd_admission_queue_depth", 1)
		defer s.rec.Count("irrd_admission_queue_depth", -1)
		if err := s.sem.Acquire(actx, weight); err != nil {
			// The admission deadline firing means capacity, not a client
			// cancellation — unless the request context itself is done.
			if ctx.Err() != nil {
				return nil, comperr.Canceled(ctx.Err())
			}
			return nil, errCapacity
		}
	}
	s.rec.Count("irrd_inflight", 1)
	return func() {
		s.rec.Count("irrd_inflight", -1)
		s.sem.Release(weight)
	}, nil
}

// requestContext derives the per-request compile context: the client
// disconnect already cancels r.Context(); RequestTimeout adds the deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// decodeCompileRequest reads, validates and normalizes the request body
// (api.CompileRequest.Normalize resolves kernel references and checks the
// mode); the source size limit applies to the body as a whole and to the
// resolved source.
func (s *Server) decodeCompileRequest(w http.ResponseWriter, r *http.Request, into any, req *api.CompileRequest) error {
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+4096)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return comperr.Limitf("request body exceeds %d bytes", s.cfg.MaxSourceBytes)
		}
		return comperr.Parsef("invalid request body: %v", err)
	}
	return req.Normalize()
}

// options maps the request to public compile options under the server's
// limits. Telemetry is always on: the response's irr-metrics/1 document
// and the decision log need the recorder, and the server absorbs every
// compilation's counters and histograms into its /metrics aggregates.
// An Explain or Trace request raises the recorder to debug level.
func (s *Server) options(req *api.CompileRequest, requestID string) (irregular.Options, error) {
	opts := irregular.Options{
		Intraprocedural: req.Intraprocedural,
		Interchange:     req.Interchange,
		Telemetry:       true,
		Trace:           req.Explain || req.Trace,
		RequestID:       requestID,
		Shared:          s.shared,
		Limits: irregular.Limits{
			MaxQuerySteps:  s.cfg.MaxQuerySteps,
			MaxSourceBytes: s.cfg.MaxSourceBytes,
		},
	}
	switch req.ResolvedMode() {
	case "full":
		opts.Mode = irregular.Full
	case "noiaa":
		opts.Mode = irregular.NoIAA
	case "baseline":
		opts.Mode = irregular.Baseline
	default:
		return opts, comperr.Parsef("unknown mode %q", req.Mode)
	}
	return opts, nil
}

// cacheHeader reports how the cross-request cache satisfied a request:
// "hit", "miss", "coalesced" or "bypass" (debug-level or cache disabled).
const cacheHeader = api.CacheHeader

// cacheKey derives the content-addressed key of a compilation from the
// request's affinity digest — the hex SHA-256 over the resolved source
// and every option that changes the compiled output (api.AffinityDigest;
// the same digest the irrgw gateway routes by, so requests land on the
// backend already holding their cache entry) — plus the response schema
// and the server's query-step budget (a different budget can turn a
// success into a 413). Telemetry level, request IDs and run options are
// deliberately excluded — they never change what the compiler produces
// (debug-level requests bypass the cache entirely).
func (s *Server) cacheKey(req *api.CompileRequest, lint bool) rescache.Key {
	return rescache.KeyOf(
		"irr-metrics/1", // response-schema guard: bump-safe across deploys
		req.AffinityDigest(lint),
		strconv.Itoa(s.cfg.MaxQuerySteps),
	)
}

// compileSnapshot resolves a compile request to an immutable snapshot,
// through the cross-request cache when it applies. Admission happens
// inside the compute path, so a cache hit is admission-free and coalesced
// waiters do not hold semaphore slots while parked (which could deadlock
// a leader waiting for admission against followers holding every slot).
// The compilation's telemetry is absorbed into the process recorder on
// every path where the compile itself succeeded — including when a later
// stage (snapshotting, the caller's run) fails.
func (s *Server) compileSnapshot(ctx context.Context, req *api.CompileRequest, opts irregular.Options, weight int64) (*irregular.Snapshot, string, error) {
	compute := func() (*irregular.Snapshot, error) {
		release, err := s.admit(ctx, weight)
		if err != nil {
			return nil, err
		}
		defer release()
		res, err := s.compile(ctx, req.Src, opts)
		if err != nil {
			return nil, err
		}
		// The compilation did real analysis work: its phase histograms
		// and counters reach /metrics even if snapshotting fails.
		s.rec.Absorb(res.Recorder)
		return res.Snapshot()
	}
	if s.cache == nil || opts.Trace {
		snap, err := compute()
		return snap, "bypass", err
	}
	// A waiter abandoning a flight on its own context returns a bare
	// context error; comperr.KindOf classifies those as ErrCanceled, so
	// statusOf maps them to 504 like any pre-typed compute error.
	snap, out, err := s.cache.Do(ctx, s.cacheKey(req, opts.Lint), compute)
	return snap, out.String(), err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.rec.Count("irrd_compile_total", 1)
	var req api.CompileRequest
	if err := s.decodeCompileRequest(w, r, &req, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	opts, err := s.options(&req, r.Header.Get(requestIDHeader))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	if req.Explain || req.Trace {
		// Debug-level compile: the response embeds the recorder's event
		// stream, which is per-request by nature — bypass the cache.
		release, err := s.admit(ctx, 1)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		defer release()
		res, err := s.compile(ctx, req.Src, opts)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		// Absorbed before the response is built, so the compilation's
		// telemetry survives a SummaryJSON failure.
		s.rec.Absorb(res.Recorder)
		metrics, err := res.SummaryJSON()
		if err != nil {
			s.fail(w, r, err)
			return
		}
		resp := api.CompileResponse{
			Summary:   res.Summary(),
			Metrics:   metrics,
			RequestID: r.Header.Get(requestIDHeader),
		}
		if req.Explain {
			resp.Explain = res.Explain()
		}
		if req.Trace {
			var buf bytes.Buffer
			if err := obs.WriteChromeTrace(&buf, res.Recorder.Events()); err != nil {
				s.fail(w, r, err)
				return
			}
			resp.Trace = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		}
		w.Header().Set(cacheHeader, "bypass")
		api.WriteJSON(w, http.StatusOK, resp)
		return
	}

	snap, outcome, err := s.compileSnapshot(ctx, &req, opts, 1)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	w.Header().Set(cacheHeader, outcome)
	api.WriteJSON(w, http.StatusOK, api.CompileResponse{
		Summary:   snap.Summary(),
		Metrics:   snap.MetricsJSON(),
		RequestID: r.Header.Get(requestIDHeader),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.rec.Count("irrd_run_total", 1)
	var req api.RunRequest
	if err := s.decodeCompileRequest(w, r, &req, &req.CompileRequest); err != nil {
		s.fail(w, r, err)
		return
	}
	opts, err := s.options(&req.CompileRequest, r.Header.Get(requestIDHeader))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if req.Profile != "" && req.Profile != string(irregular.Origin2000) && req.Profile != string(irregular.Challenge) {
		s.fail(w, r, comperr.Parsef("unknown machine profile %q", req.Profile))
		return
	}
	maxSteps := req.MaxSteps
	if maxSteps == 0 || maxSteps > s.cfg.MaxRunSteps {
		maxSteps = s.cfg.MaxRunSteps
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	// The compilation half goes through the cross-request cache: a warm
	// run skips straight to execution. The run half is always per-request
	// — it admits its own weight and executes on a Clone of the immutable
	// snapshot with a fresh recorder, so concurrent runs of one cached
	// compilation never share mutable state.
	snap, outcome, err := s.compileSnapshot(ctx, &req.CompileRequest, opts, 1)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	w.Header().Set(cacheHeader, outcome)
	release, err := s.admit(ctx, 1)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	defer release()

	res := snap.Clone()
	res.Recorder = obs.New()
	// Absorbed on success and on run failure alike: the run did simulated
	// work either way, and the compile's own telemetry was already
	// absorbed when it actually compiled (not on cache hits).
	defer s.rec.Absorb(res.Recorder)
	var out limitedBuffer
	out.max = s.cfg.MaxOutputBytes
	rr, err := res.RunContext(ctx, irregular.RunOptions{
		Processors:            req.Processors,
		Profile:               irregular.MachineProfile(req.Profile),
		Out:                   &out,
		MaxSteps:              maxSteps,
		EliminateBoundsChecks: req.BoundsCheckElim,
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.RunResponse{
		Time:            rr.Time,
		ParallelRegions: rr.ParallelRegions,
		Output:          out.String(),
		OutputTruncated: out.truncated,
		Summary:         snap.Summary(),
	})
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	s.rec.Count("irrd_lint_total", 1)
	var req api.CompileRequest
	if err := s.decodeCompileRequest(w, r, &req, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	opts, err := s.options(&req, r.Header.Get(requestIDHeader))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	opts.Lint = true
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// Weight 2, like a cold /v1/run: the audit replays the program on the
	// simulated machine. Lint compilations cache under their own key
	// (opts.Lint is part of the derivation).
	snap, outcome, err := s.compileSnapshot(ctx, &req, opts, 2)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	w.Header().Set(cacheHeader, outcome)
	diags := snap.Diags()
	if diags == nil {
		diags = []irregular.Diag{}
	}
	api.WriteJSON(w, http.StatusOK, api.LintResponse{
		Diags:    diags,
		Counts:   lint.Count(diags),
		Rendered: irregular.RenderDiags(diags),
	})
}

func (s *Server) handleKernels(w http.ResponseWriter, _ *http.Request) {
	var out api.KernelsResponse
	for _, name := range irregular.Kernels() {
		src, err := irregular.KernelSource(name)
		if err != nil {
			continue
		}
		out.Kernels = append(out.Kernels, api.KernelInfo{Name: name, Bytes: len(src)})
	}
	api.WriteJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := api.Healthz{
		Status:   "ok",
		Inflight: s.rec.Counter("irrd_inflight"),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		body.CacheEntries = int64(st.Entries)
		body.CacheBytes = st.Bytes
	}
	if s.shared != nil {
		st := s.shared.Stats()
		body.SharedInternEntries = int64(st.Intern.Entries)
		body.SharedMemoEntries = int64(st.Memo.Entries)
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// handleMetrics serves the process-wide telemetry. The default response is
// the Prometheus text exposition format (counters typed by the _total
// suffix, gauges otherwise, and one histogram family per latency metric
// with cumulative buckets in seconds). "Accept: application/json" selects
// the irrd-metrics/2 JSON document instead, which adds derived quantiles.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		type hist struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
			SumNs int64  `json:"sum_ns"`
			P50Ns int64  `json:"p50_ns"`
			P90Ns int64  `json:"p90_ns"`
			P99Ns int64  `json:"p99_ns"`
		}
		var hists []hist
		for _, h := range s.rec.Histograms() {
			hists = append(hists, hist{
				Name: h.Name, Count: h.Count, SumNs: h.SumNs,
				P50Ns: h.P50(), P90Ns: h.P90(), P99Ns: h.P99(),
			})
		}
		api.WriteJSON(w, http.StatusOK, map[string]any{
			"schema":     "irrd-metrics/2",
			"counters":   s.rec.Counters(),
			"histograms": hists,
		})
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	obs.WritePrometheus(w, s.rec) //nolint:errcheck // the response is already committed
}

// fail writes the unified error envelope (kind, message, request ID; the
// status is the api kind→status table's) and counts the failure by kind.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	kind := errorKind(err)
	s.rec.Count("irrd_errors_total:kind="+kind, 1)
	if errors.Is(err, errCapacity) {
		s.rec.Count("irrd_rejected_capacity_total", 1)
	}
	api.WriteError(w, kind, err.Error(), r.Header.Get(requestIDHeader))
}

// errorKind classifies err for the envelope: admission rejections are
// "over_capacity" (429, not the resource-limit 413), everything else maps
// through the comperr taxonomy ("internal" when unclassified).
func errorKind(err error) string {
	if errors.Is(err, errCapacity) {
		return api.KindOverCapacity
	}
	return comperr.KindString(err)
}

// limitedBuffer keeps the first max bytes and drops (but notes) the rest —
// a simulated program's PRINT output must not grow the response unbounded.
type limitedBuffer struct {
	buf       []byte
	max       int
	truncated bool
}

func (b *limitedBuffer) Write(p []byte) (int, error) {
	if room := b.max - len(b.buf); room > 0 {
		if len(p) > room {
			b.buf = append(b.buf, p[:room]...)
			b.truncated = true
		} else {
			b.buf = append(b.buf, p...)
		}
	} else if len(p) > 0 {
		b.truncated = true
	}
	return len(p), nil
}

func (b *limitedBuffer) String() string { return string(b.buf) }
