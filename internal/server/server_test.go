package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	irregular "repro"
	"repro/internal/api"
	"repro/internal/comperr"
	"repro/internal/obs"
)

const demoSrc = `
program demo
  param n = 64
  real a(n), b(n)
  integer i
  real total
  do i = 1, n
    b(i) = real(mod(i * 3, 7))
  end do
  total = 0.0
  do i = 1, n
    a(i) = b(i) * 2.0
    total = total + a(i)
  end do
  print "total", total
end
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, ts *httptest.Server, path string, body any, into any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp
}

// errEnvelope aliases the unified envelope with the field named Error,
// so existing assertions read naturally.
type errEnvelope struct {
	Error api.ErrorBody `json:"error"`
}

func TestCompileRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out api.CompileResponse
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc, Explain: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(out.Summary, "PARALLEL") {
		t.Errorf("summary lacks a parallel loop:\n%s", out.Summary)
	}
	var metrics struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(out.Metrics, &metrics); err != nil {
		t.Fatalf("metrics document: %v", err)
	}
	if metrics.Schema != "irr-metrics/1" {
		t.Errorf("metrics schema = %q, want irr-metrics/1", metrics.Schema)
	}
	if out.Explain == "" {
		t.Error("explain requested but empty")
	}
}

func TestCompileKernel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out api.CompileResponse
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Kernel: "trfd"}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Summary == "" {
		t.Error("empty summary for kernel compile")
	}
}

func TestRunRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out api.RunResponse
	resp := post(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Src: demoSrc},
		Processors:     4,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Time == 0 {
		t.Error("zero simulated time")
	}
	if !strings.Contains(out.Output, "total") {
		t.Errorf("PRINT output missing: %q", out.Output)
	}
}

func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 512})
	cases := []struct {
		name   string
		body   any
		status int
		kind   string
	}{
		{"parse error", api.CompileRequest{Src: "program p\n  this is not f-lite\nend\n"}, http.StatusBadRequest, "parse"},
		{"bad json", "not json", http.StatusBadRequest, "parse"},
		{"missing src", api.CompileRequest{}, http.StatusBadRequest, "parse"},
		{"src and kernel", api.CompileRequest{Src: "x", Kernel: "trfd"}, http.StatusBadRequest, "parse"},
		{"unknown kernel", api.CompileRequest{Kernel: "nope"}, http.StatusBadRequest, "parse"},
		{"unknown mode", api.CompileRequest{Src: demoSrc, Mode: "turbo"}, http.StatusBadRequest, "parse"},
		{"oversized source", api.CompileRequest{Src: demoSrc + strings.Repeat("! padding\n", 200)}, http.StatusRequestEntityTooLarge, "resource_limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env errEnvelope
			resp := post(t, ts, "/v1/compile", tc.body, &env)
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d (%v)", resp.StatusCode, tc.status, env.Error)
			}
			if env.Error.Kind != tc.kind {
				t.Errorf("kind = %q, want %q", env.Error.Kind, tc.kind)
			}
		})
	}
}

// TestQueryStepLimit drives a real compilation into the propagation
// budget. The trfd kernel exercises the property analysis (demoSrc is
// affine-only and issues no queries).
func TestQueryStepLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQuerySteps: 1})
	var env errEnvelope
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Kernel: "trfd"}, &env)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%v)", resp.StatusCode, env.Error)
	}
	if env.Error.Kind != "resource_limit" {
		t.Errorf("kind = %q, want resource_limit", env.Error.Kind)
	}
}

// TestPanicIsolation injects a panicking compile function and checks the
// request gets a structured 500 while the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	real := s.compile
	s.compile = func(ctx context.Context, src string, opts irregular.Options) (*irregular.Result, error) {
		panic("injected failure")
	}
	var env errEnvelope
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc}, &env)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if env.Error.Kind != "internal" || !strings.Contains(env.Error.Message, "injected failure") {
		t.Errorf("envelope = %+v", env.Error)
	}
	if got := s.rec.Counter("irrd_panics_total"); got != 1 {
		t.Errorf("irrd_panics_total = %d, want 1", got)
	}
	// The semaphore slot must have been released: the server still serves.
	s.compile = real
	var out api.CompileResponse
	resp = post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: status = %d", resp.StatusCode)
	}
}

// TestAdmissionControl saturates a 1-slot server with a blocked compile and
// checks the next request is rejected 429 (AdmitTimeout<0: fail fast).
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, AdmitTimeout: -1})
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	real := s.compile
	s.compile = func(ctx context.Context, src string, opts irregular.Options) (*irregular.Result, error) {
		once.Do(func() { close(entered) })
		<-block
		return real(ctx, src, opts)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc}, nil)
	}()
	<-entered

	// A *different* source, so the request contends for admission instead
	// of coalescing onto the blocked compile's flight.
	other := demoSrc + "! distinct cache key\n"
	var env errEnvelope
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Src: other}, &env)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if env.Error.Kind != "over_capacity" {
		t.Errorf("kind = %q, want over_capacity", env.Error.Kind)
	}
	close(block)
	wg.Wait()

	// With the slot free again the same request is admitted.
	var out api.CompileResponse
	if resp := post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status = %d, want 200", resp.StatusCode)
	}
}

// TestRequestTimeout gives requests a 1ms deadline: a compilation that
// honors its context must come back 504 promptly instead of wedging the
// worker slot. The injected compile blocks until ctx fires, as the real
// pipeline's cancellation checkpoints do.
func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Millisecond})
	s.compile = func(ctx context.Context, src string, opts irregular.Options) (*irregular.Result, error) {
		<-ctx.Done()
		return nil, comperr.Canceled(ctx.Err())
	}
	var env errEnvelope
	start := time.Now()
	resp := post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc}, &env)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", resp.StatusCode, env.Error)
	}
	if env.Error.Kind != "canceled" {
		t.Errorf("kind = %q, want canceled", env.Error.Kind)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, want prompt", elapsed)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", health, err)
	}

	post(t, ts, "/v1/compile", api.CompileRequest{Src: demoSrc}, nil)

	// The default /metrics response is the Prometheus text format.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	samples, err := obs.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, body)
	}
	byName := map[string]float64{}
	for _, sm := range samples {
		byName[sm.Name] += sm.Value
	}
	if byName["irrd_compile_total"] < 1 || byName["irrd_requests_total"] < 1 {
		t.Errorf("prometheus samples missing request counters:\n%s", body)
	}

	// Accept: application/json selects the JSON document.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	jresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var m struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Schema != "irrd-metrics/2" {
		t.Errorf("schema = %q", m.Schema)
	}
	if m.Counters["irrd_compile_total"] < 1 || m.Counters["irrd_requests_total"] < 1 {
		t.Errorf("counters = %v", m.Counters)
	}
}

func TestKernelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Kernels []struct {
			Name  string `json:"name"`
			Bytes int    `json:"bytes"`
		} `json:"kernels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Kernels) == 0 {
		t.Fatal("no kernels listed")
	}
	for _, k := range out.Kernels {
		if k.Name == "" || k.Bytes == 0 {
			t.Errorf("bad kernel entry %+v", k)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile status = %d, want 405", resp.StatusCode)
	}
}

// --- semaphore unit tests ---

func TestWeightedFIFO(t *testing.T) {
	s := newWeighted(2)
	if err := s.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i == 2 {
				<-start // enforce 1 queues before 2
			}
			if err := s.Acquire(context.Background(), int64(i)); err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			order <- i
			s.Release(int64(i))
		}()
	}
	// Let goroutine 1 (weight 1) queue first, then 2 (weight 2).
	for s.waiters() != 1 {
		time.Sleep(time.Millisecond)
	}
	close(start)
	for s.waiters() != 2 {
		time.Sleep(time.Millisecond)
	}
	s.Release(2)
	wg.Wait()
	if first := <-order; first != 1 {
		t.Errorf("first grant = %d, want FIFO order 1", first)
	}
}

// waiters reports the queue length (test helper).
func (s *weighted) waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wait.Len()
}

func TestWeightedAcquireCanceled(t *testing.T) {
	s := newWeighted(1)
	if !s.TryAcquire(1) {
		t.Fatal("TryAcquire on empty semaphore failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx, 1); err == nil {
		t.Fatal("Acquire succeeded on a full semaphore")
	}
	s.Release(1)
	// The canceled waiter must have left the queue: a fresh acquire works.
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	s.Release(1)
}

func TestWeightedClampsOversized(t *testing.T) {
	s := newWeighted(2)
	if !s.TryAcquire(5) { // clamped to 2
		t.Fatal("oversized TryAcquire failed on empty semaphore")
	}
	if s.TryAcquire(1) {
		t.Fatal("semaphore not saturated by clamped acquire")
	}
	s.Release(5) // symmetric clamp
	if !s.TryAcquire(2) {
		t.Fatal("release did not restore capacity")
	}
}

func TestLimitedBuffer(t *testing.T) {
	var b limitedBuffer
	b.max = 5
	fmt.Fprint(&b, "hello world")
	if b.String() != "hello" || !b.truncated {
		t.Errorf("buf = %q truncated=%v", b.String(), b.truncated)
	}
}

func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A clean program: 200 with an empty (but present) diags array.
	var out api.LintResponse
	resp := post(t, ts, "/v1/lint", api.CompileRequest{Src: demoSrc}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Diags == nil || len(out.Diags) != 0 {
		t.Errorf("clean program diags = %v, want []", out.Diags)
	}
	if out.Rendered != "" {
		t.Errorf("rendered = %q, want empty", out.Rendered)
	}

	// A defective program: findings come back structured and rendered.
	bad := `
program bad
  param n = 8
  real a(n)
  integer i, u
  a(n + 1) = real(u)
  do i = 1, n
    a(i) = 1.0
  end do
end
`
	out = api.LintResponse{}
	resp = post(t, ts, "/v1/lint", api.CompileRequest{Src: bad}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (findings are not transport errors)", resp.StatusCode)
	}
	codes := map[string]bool{}
	for _, d := range out.Diags {
		codes[d.Code] = true
	}
	if !codes["IRR3002"] || !codes["IRR1001"] {
		t.Errorf("want IRR3002 and IRR1001, got %v", out.Diags)
	}
	if out.Counts.Errors == 0 || out.Counts.Warnings == 0 {
		t.Errorf("counts = %+v", out.Counts)
	}
	if !strings.Contains(out.Rendered, "[IRR3002]") {
		t.Errorf("rendered output missing code tag:\n%s", out.Rendered)
	}

	// A program that does not parse is still a transport-level error.
	var env errEnvelope
	resp = post(t, ts, "/v1/lint", api.CompileRequest{Src: "not f-lite"}, &env)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse failure status = %d, want 400", resp.StatusCode)
	}
}
