// Package irregular is a Go reproduction of Lin & Padua, "Compiler Analysis
// of Irregular Memory Accesses" (PLDI 2000): a parallelizing compiler for
// the small Fortran-like language F-lite whose loop parallelization is
// driven by the paper's two compile-time techniques for irregular array
// accesses —
//
//  1. irregular single-indexed access analysis (§2): bounded depth-first
//     searches over the control-flow graph classify arrays subscripted by a
//     single scalar as consecutively written or as array stacks;
//  2. demand-driven interprocedural array property analysis (§3): reverse
//     query propagation over a hierarchical control graph derives and
//     verifies index-array properties (injectivity, monotonicity,
//     closed-form values, bounds and distances), with index-gathering loops
//     (§4) recognised through technique 1.
//
// The results feed the privatization test and the dependence tests (range
// test, offset–length test, injective test, closed-form-value
// substitution), which decide loop parallelization. A deterministic
// simulated parallel machine executes the result, regenerating the paper's
// evaluation: Table 2 (compilation-time overhead of the property analysis),
// Table 3 (the loops and properties found) and Fig. 16 (speedups of the
// three compiler configurations).
//
// Quick start:
//
//	res, err := irregular.Compile(src, irregular.Options{})
//	fmt.Print(res.Summary())
//	out, _ := res.Run(irregular.RunOptions{Processors: 8})
//	fmt.Println(out.Time)
package irregular

import (
	"context"
	"fmt"
	"io"

	"repro/internal/boundscheck"
	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/interp"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// The typed error taxonomy of the public API. Every error returned by
// CompileContext, CompileBatchContext and RunContext (and their
// background-context wrappers) wraps exactly one of these sentinels;
// classify with errors.Is, never by message string. ErrCanceled errors
// additionally wrap the context error, so errors.Is against
// context.Canceled / context.DeadlineExceeded also holds.
var (
	// ErrParse marks source text the parser rejected.
	ErrParse = comperr.ErrParse
	// ErrAnalysis marks failures of semantic analysis or the
	// transformation passes.
	ErrAnalysis = comperr.ErrAnalysis
	// ErrResourceLimit marks a compilation or execution that exceeded a
	// configured bound (Options.Limits, RunOptions.MaxSteps) instead of
	// running unbounded.
	ErrResourceLimit = comperr.ErrResourceLimit
	// ErrCanceled marks a compilation or execution aborted by context
	// cancellation or deadline expiry.
	ErrCanceled = comperr.ErrCanceled
)

// Limits bounds the resources one compilation may consume; the zero value
// is unlimited. Both the library entry points and the irrd server honor the
// same limits.
type Limits = pipeline.Limits

// Mode selects the compiler configuration of the paper's evaluation.
type Mode = parallel.Mode

// Compiler configurations (Fig. 16's three lines).
const (
	// Full is Polaris with irregular access analysis — the paper's system.
	Full = parallel.Full
	// NoIAA is Polaris without irregular access analysis.
	NoIAA = parallel.NoIAA
	// Baseline is an affine-only auto-parallelizer (the SGI APO stand-in).
	Baseline = parallel.Baseline
)

// Options configures compilation.
type Options struct {
	// Mode is the compiler configuration; the zero value is Full.
	Mode Mode
	// Intraprocedural restricts the property analysis to single units,
	// modelling the pre-reorganization phase order of Fig. 15(a).
	Intraprocedural bool
	// Interchange enables the loop-interchange companion pass.
	Interchange bool
	// Telemetry attaches an obs.Recorder to the compilation (and to
	// subsequent Run calls) at the always-on production level: per-phase
	// spans and latency histograms, per-query-kind latency, dependence-test
	// verdicts and per-loop simulated time, driving Result.Explain,
	// Result.SummaryJSON and the irrd /metrics aggregation.
	Telemetry bool
	// Trace raises the recorder to debug level: per-node query propagation
	// steps, cache events and failed-verdict diagnosis replays — the detail
	// behind `-explain` decision logs and full Chrome trace exports. Implies
	// Telemetry. Costs per-HCG-node formatting work; not for production.
	Trace bool
	// RequestID, when set, is stamped onto the compilation's recorder as a
	// "request" event and carried into telemetry documents, correlating a
	// compilation's trace with the irrd request (X-Request-Id) that ran it.
	RequestID string
	// Jobs bounds the worker pool of the per-unit build phases and of
	// CompileBatch's per-input fan-out (0 or negative: GOMAXPROCS). The
	// output is identical for every value.
	Jobs int
	// NoPropertyCache disables the property-query memo table (verdicts
	// are identical either way; used to measure the cache).
	NoPropertyCache bool
	// NoExprIntern disables symbolic-expression hash-consing (output is
	// byte-identical either way; used to measure the interner).
	NoExprIntern bool
	// NoRecurrence disables definition-site recurrence derivation (the
	// `-no-recurrence` ablation): index-array properties are no longer
	// proven from the loops that fill the arrays, so loops that depend on
	// derived monotonicity/injectivity stay serial.
	NoRecurrence bool
	// Shared, when non-nil, attaches a cross-compilation analysis cache
	// (see NewSharedCache): expressions interned and property verdicts
	// proved by one compilation replay for every other compilation of
	// byte-identical source under identical analysis options. Batches
	// create one automatically; long-lived processes (irrd) share one
	// across requests. Verdicts are identical with or without it.
	Shared *SharedCache
	// NoSharedCache keeps the compilation on private per-compilation
	// tables even when a shared cache is available — the ablation
	// measuring what cross-compilation sharing buys.
	NoSharedCache bool
	// Limits bounds the compilation (source bytes, query-propagation
	// steps); the zero value is unlimited. Violations return
	// ErrResourceLimit-classified errors.
	Limits Limits
	// Lint runs the diagnostics phase: source lints (use-before-def,
	// unreachable code, degenerate DO loops, provable out-of-bounds
	// subscripts, non-injective index arrays) plus the parallelization
	// verdict audit. Findings land in Result.Diags; they never fail the
	// compilation.
	Lint bool
}

// pipelineConfig is the single conversion point from the public Options to
// the pipeline's option struct and phase organization — every entry point
// (Compile, CompileBatch and their context variants, and through them the
// irrd server) builds its pipeline options here.
func (o Options) pipelineConfig() (pipeline.Options, pipeline.Organization) {
	org := pipeline.Reorganized
	if o.Intraprocedural {
		org = pipeline.Original
	}
	var rec *obs.Recorder
	switch {
	case o.Trace:
		rec = obs.NewDebug()
	case o.Telemetry:
		rec = obs.New()
	}
	if rec != nil && o.RequestID != "" {
		rec.Event("request", obs.F("id", o.RequestID))
	}
	return pipeline.Options{
		Interchange:     o.Interchange,
		Recorder:        rec,
		Jobs:            o.Jobs,
		NoPropertyCache: o.NoPropertyCache,
		NoExprIntern:    o.NoExprIntern,
		NoRecurrence:    o.NoRecurrence,
		Shared:          o.Shared,
		NoSharedCache:   o.NoSharedCache,
		Limits:          o.Limits,
		Lint:            o.Lint,
	}, org
}

// SharedCache is the cross-compilation analysis memo layer: a sharded
// expression interner plus a sharded property-verdict table, safe for any
// number of concurrent compilations. Entries are scoped by program identity,
// so only byte-identical compilations share; sharing changes time, never
// output.
type SharedCache = pipeline.SharedAnalysisCache

// NewSharedCache builds an empty shared analysis cache. Create one per
// long-lived process and pass it through Options.Shared.
func NewSharedCache() *SharedCache { return pipeline.NewSharedAnalysisCache() }

// Result is a finished compilation.
type Result struct {
	*pipeline.Result
	bounds *boundscheck.Result
}

// BoundsChecks runs (once, cached) the bounds-check elimination analysis —
// one of the companion applications of the irregular-access machinery —
// and reports which references are provably in range.
func (r *Result) BoundsChecks() *boundscheck.Result {
	if r.bounds == nil {
		prop := property.New(r.Info, cfg.BuildHCG(r.Program), r.Mod)
		r.bounds = boundscheck.New(r.Info, prop).Analyze()
	}
	return r.bounds
}

// Snapshot is an immutable, shareable view of a finished compilation: the
// frozen summary, irr-metrics/1 document and diagnostics. Snapshots are
// safe to share across goroutines and requests — the irrd cross-request
// cache stores one snapshot per distinct compilation — and Clone hands
// each caller an independent Result for per-request work (running on the
// simulated machine, bounds-check analysis) without touching shared state.
type Snapshot struct {
	s *pipeline.Snapshot
}

// Snapshot freezes the compilation. See pipeline.Snapshot for the
// immutability contract.
func (r *Result) Snapshot() (*Snapshot, error) {
	s, err := r.Result.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{s: s}, nil
}

// Summary returns the frozen human-readable compilation report.
func (s *Snapshot) Summary() string { return s.s.Summary() }

// MetricsJSON returns a copy of the frozen irr-metrics/1 document.
func (s *Snapshot) MetricsJSON() []byte { return s.s.MetricsJSON() }

// Diags returns a copy of the frozen diagnostics.
func (s *Snapshot) Diags() []Diag { return s.s.Diags() }

// Cost estimates the snapshot's retained bytes (for cache byte budgets).
func (s *Snapshot) Cost() int64 { return s.s.Cost() }

// Clone returns a fresh per-caller Result over the snapshot's immutable
// compilation: the program, semantic info and reports are shared
// (read-only); the Recorder is nil and the bounds-check analysis is
// recomputed lazily per clone, so concurrent clones never share mutable
// state.
func (s *Snapshot) Clone() *Result {
	return &Result{Result: s.s.Clone()}
}

// Compile parses, transforms, analyzes and parallelizes an F-lite program.
// It is CompileContext with a background context: no deadline, no
// cancellation, no limits beyond opts.Limits.
func Compile(src string, opts Options) (*Result, error) {
	return CompileContext(context.Background(), src, opts)
}

// CompileContext is Compile under a context: the pipeline polls ctx at
// phase boundaries, inside the query-propagation loop of the property
// analysis and inside the §2 bounded depth-first searches, so a fired
// deadline or a canceled context aborts mid-analysis with an
// ErrCanceled-classified error (also matching the context error under
// errors.Is). The checkpoints only read, so an uncancelled compilation
// produces output byte-identical to Compile's.
func CompileContext(ctx context.Context, src string, opts Options) (*Result, error) {
	popts, org := opts.pipelineConfig()
	res, err := pipeline.CompileContext(ctx, src, opts.Mode, org, popts)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res}, nil
}

// Diag is one lint or audit finding; see package internal/lint for the
// diagnostic model and the IRRxxxx code registry.
type Diag = lint.Diag

// DiagSeverity ranks a diagnostic.
type DiagSeverity = lint.Severity

// Diagnostic severities, ordered.
const (
	DiagInfo    = lint.Info
	DiagWarning = lint.Warning
	DiagError   = lint.Error
)

// RenderDiags writes diagnostics in the canonical text format, one primary
// line per finding plus indented related notes and fix hints.
func RenderDiags(diags []Diag) string { return lint.Render(diags) }

// Lint compiles src with the diagnostics phase enabled and returns the
// findings, sorted by source span then code. It is LintContext with a
// background context.
func Lint(src string, opts Options) ([]Diag, error) {
	return LintContext(context.Background(), src, opts)
}

// LintContext is Lint under a context (the same cancellation checkpoints
// as CompileContext, plus checkpoints inside the lint walks and the audit
// replay).
func LintContext(ctx context.Context, src string, opts Options) ([]Diag, error) {
	opts.Lint = true
	res, err := CompileContext(ctx, src, opts)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// BatchInput is one source file of a batch compilation.
type BatchInput = pipeline.BatchInput

// BatchResult holds the per-input outcomes of CompileBatch in input order.
type BatchResult = pipeline.BatchResult

// CompileBatch compiles several programs, fanning the inputs over a
// worker pool of opts.Jobs goroutines. Every input is an independent
// compilation; per-input results, summaries and verdicts are deterministic
// — identical for any job count. The items share one analysis cache unless
// opts.NoSharedCache is set; see pipeline.CompileBatch for the counter
// caveat under duplicated inputs.
func CompileBatch(inputs []BatchInput, opts Options) *BatchResult {
	return CompileBatchContext(context.Background(), inputs, opts)
}

// CompileBatchContext is CompileBatch under a context: in-flight items
// abort at their cancellation checkpoints; items not yet started when ctx
// fires are marked with ErrCanceled-classified errors without compiling.
func CompileBatchContext(ctx context.Context, inputs []BatchInput, opts Options) *BatchResult {
	popts, org := opts.pipelineConfig()
	return pipeline.CompileBatchContext(ctx, inputs, opts.Mode, org, popts)
}

// MachineProfile selects a simulated machine.
type MachineProfile string

// Machine profiles of the paper's evaluation.
const (
	// Origin2000 models the paper's 56-processor SGI Origin 2000.
	Origin2000 MachineProfile = "origin2000"
	// Challenge models the paper's 4-processor SGI Challenge.
	Challenge MachineProfile = "challenge"
)

func (p MachineProfile) profile() (machine.Profile, error) {
	switch p {
	case Origin2000, "":
		return machine.Origin2000, nil
	case Challenge:
		return machine.Challenge, nil
	}
	return machine.Profile{}, fmt.Errorf("irregular: unknown machine profile %q", p)
}

// RunOptions configures one execution on the simulated machine.
type RunOptions struct {
	// Processors is the virtual processor count (default 1).
	Processors int
	// Profile selects the machine model (default Origin2000).
	Profile MachineProfile
	// Out receives PRINT output (nil discards it).
	Out io.Writer
	// MaxSteps bounds execution (0: a large default).
	MaxSteps uint64
	// EliminateBoundsChecks applies the bounds-check elimination analysis:
	// proven references skip the run-time check and cost less.
	EliminateBoundsChecks bool
}

// RunResult reports one execution.
type RunResult struct {
	// Time is the simulated execution time in cost-model cycles.
	Time uint64
	// ParallelRegions counts executed parallel regions.
	ParallelRegions int
	interp          *interp.Interp
}

// Global reads a global real or integer scalar as float64 after the run.
func (r *RunResult) Global(name string) (float64, error) {
	if v, err := r.interp.GlobalReal(name); err == nil {
		return v, nil
	}
	v, err := r.interp.GlobalInt(name)
	return float64(v), err
}

// Run executes the compiled (and annotated) program on the simulated
// machine. It is RunContext with a background context.
func (r *Result) Run(opts RunOptions) (*RunResult, error) {
	return r.RunContext(context.Background(), opts)
}

// RunContext is Run under a context: the interpreter polls ctx
// periodically (every few thousand simulated steps), so a fired deadline
// or canceled context aborts the execution with an ErrCanceled-classified
// error. Exceeding opts.MaxSteps returns an ErrResourceLimit-classified
// error; both classify with errors.Is.
func (r *Result) RunContext(ctx context.Context, opts RunOptions) (*RunResult, error) {
	prof, err := opts.Profile.profile()
	if err != nil {
		return nil, err
	}
	if opts.Processors < 1 {
		opts.Processors = 1
	}
	var safe map[*lang.ArrayRef]bool
	if opts.EliminateBoundsChecks {
		safe = r.BoundsChecks().Safe
	}
	m := machine.New(prof, opts.Processors)
	m.Rec = r.Recorder // nil when telemetry was off
	in := interp.New(r.Info, interp.Options{
		Machine:  m,
		Out:      opts.Out,
		MaxSteps: opts.MaxSteps,
		SafeRefs: safe,
		Ctx:      ctx,
	})
	if err := in.Run(); err != nil {
		return nil, err
	}
	return &RunResult{
		Time:            in.Machine().Time(),
		ParallelRegions: in.Machine().ParallelRegions(),
		interp:          in,
	}, nil
}

// Format pretty-prints the transformed program (parallel loops carry a
// !parallel annotation).
func (r *Result) Format() string { return lang.Format(r.Program) }

// Kernel names the bundled benchmark programs of the paper's evaluation.
func Kernels() []string {
	var names []string
	for _, k := range kernels.All(kernels.Small) {
		names = append(names, k.Name)
	}
	return names
}

// KernelSource returns the F-lite source of a bundled benchmark at the
// default evaluation size.
func KernelSource(name string) (string, error) {
	k, err := kernels.ByName(name, kernels.Default)
	if err != nil {
		return "", err
	}
	return k.Source, nil
}
