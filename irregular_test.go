package irregular

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const demoSrc = `
program demo
  param n = 128
  real a(n), b(n)
  integer i
  real total
  do i = 1, n
    b(i) = real(mod(i * 3, 7))
  end do
  total = 0.0
  do i = 1, n
    a(i) = b(i) * 2.0
    total = total + a(i)
  end do
  print "total", total
end
`

func TestCompileAndRun(t *testing.T) {
	res, err := Compile(demoSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary(), "PARALLEL") {
		t.Errorf("expected a parallel loop:\n%s", res.Summary())
	}
	var buf bytes.Buffer
	out, err := res.Run(RunOptions{Processors: 4, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if out.Time == 0 {
		t.Error("no simulated time")
	}
	if !strings.Contains(buf.String(), "total") {
		t.Errorf("print output missing: %q", buf.String())
	}
	total, err := out.Global("total")
	if err != nil || total <= 0 {
		t.Errorf("total = %v, %v", total, err)
	}
}

func TestModesDiffer(t *testing.T) {
	src, err := KernelSource("tree")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compile(src, Options{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(src, Options{Mode: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	runAt := func(r *Result, p int) uint64 {
		out, err := r.Run(RunOptions{Processors: p})
		if err != nil {
			t.Fatal(err)
		}
		return out.Time
	}
	fullSeq, full8 := runAt(full, 1), runAt(full, 8)
	baseSeq, base8 := runAt(base, 1), runAt(base, 8)
	fullSpeed := float64(fullSeq) / float64(full8)
	baseSpeed := float64(baseSeq) / float64(base8)
	if fullSpeed < 2 {
		t.Errorf("full-mode tree should scale: %.2fx", fullSpeed)
	}
	if baseSpeed > 1.2 {
		t.Errorf("baseline tree should stay flat: %.2fx", baseSpeed)
	}
	// Both must agree on the result.
	fo, _ := full.Run(RunOptions{Processors: 8})
	bo, _ := base.Run(RunOptions{Processors: 8})
	fc, _ := fo.Global("checksum")
	bc, _ := bo.Global("checksum")
	if math.Abs(fc-bc) > 1e-6*math.Max(1, math.Abs(fc)) {
		t.Errorf("checksums differ: %v vs %v", fc, bc)
	}
}

func TestKernelsListed(t *testing.T) {
	ks := Kernels()
	if len(ks) != 8 {
		t.Fatalf("kernels: %v", ks)
	}
	for _, name := range ks {
		if _, err := KernelSource(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := KernelSource("nope"); err == nil {
		t.Error("expected error for unknown kernel")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("program p\n x = \nend\n", Options{}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Compile("program p\n x = 1\nend\n", Options{}); err == nil {
		t.Error("expected semantic error (undeclared x)")
	}
}

func TestIntraproceduralOption(t *testing.T) {
	src, err := KernelSource("dyfesm")
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	intra, err := Compile(src, Options{Intraprocedural: true})
	if err != nil {
		t.Fatal(err)
	}
	usesOffsetLength := func(r *Result) bool {
		for _, lr := range r.ParallelLoops() {
			if lr.Tests["x"] == "offset-length" {
				return true
			}
		}
		return false
	}
	if !usesOffsetLength(inter) {
		t.Error("interprocedural analysis should prove the offset-length independence")
	}
	if usesOffsetLength(intra) {
		t.Error("intraprocedural analysis must not prove the cross-unit offset-length independence")
	}
}

func TestBadMachineProfile(t *testing.T) {
	res, err := Compile(demoSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Run(RunOptions{Profile: "vax"}); err == nil {
		t.Error("expected unknown-profile error")
	}
}
