package irregular

import (
	"sync"
	"testing"
)

// TestSnapshotCloneRuns executes many clones of one cached snapshot
// concurrently through the public API; run with -race. This is the
// contract the irrd cross-request cache relies on: a snapshot's
// compilation is read-only, so clones may run simultaneously, each with
// its own recorder and its own lazily computed bounds-check state.
func TestSnapshotCloneRuns(t *testing.T) {
	res, err := Compile(demoSrc, Options{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	times := make([]uint64, 8)
	for i := 0; i < len(times); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := snap.Clone()
			rr, err := c.Run(RunOptions{Processors: 4})
			if err != nil {
				t.Errorf("clone %d: %v", i, err)
				return
			}
			times[i] = rr.Time
			// Each clone computes its own bounds-check analysis.
			if bc := c.BoundsChecks(); bc == nil {
				t.Errorf("clone %d: nil bounds-check result", i)
			}
		}()
	}
	wg.Wait()
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("clone runs diverged: times[%d]=%d, times[0]=%d", i, times[i], times[0])
		}
	}

	// The frozen document survives everything the clones did.
	again, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Summary() != again.Summary() {
		t.Error("summary drifted across snapshots of the same result")
	}
}
