package irregular

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// The disabled telemetry path must be free: compiling with a nil
// *obs.Recorder threaded through every call site allocates exactly as much
// as the plain compile. This guards the BENCH_obs.json claim — any call
// site that builds an event or field value before the nil check shows up
// here as extra allocations.
func TestTelemetryOffPathZeroAlloc(t *testing.T) {
	k, err := kernels.ByName("trfd", kernels.Small)
	if err != nil {
		t.Fatal(err)
	}
	compile := func(opts ...pipeline.Options) func() {
		return func() {
			var err error
			if len(opts) > 0 {
				_, err = pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized, opts[0])
			} else {
				_, err = pipeline.Compile(k.Source, parallel.Full, pipeline.Reorganized)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Interleave three measurements of each path and take the minimum:
	// ambient noise (interner map growth, GC assist attribution) adds a
	// couple of allocations to individual measurements, never subtracts.
	measure := func(f func()) float64 {
		m := testing.AllocsPerRun(30, f)
		for i := 0; i < 2; i++ {
			if v := testing.AllocsPerRun(30, f); v < m {
				m = v
			}
		}
		return m
	}
	baseline := measure(compile())
	off := measure(compile(pipeline.Options{Recorder: nil}))
	// A real off-path regression allocates per event or per field — dozens
	// to thousands of extra allocs/op. The tolerance of 8 (~0.04%) only
	// covers the ambient jitter above.
	if off > baseline+8 {
		t.Errorf("telemetry-off compile allocates %.0f/op, baseline %.0f/op (off path must be free)",
			off, baseline)
	}
}

// The always-on production level must not overflow its ring on a normal
// compilation: every event survives, and the collected stream carries the
// phase spans and per-phase latency histograms /metrics is built from.
func TestTelemetryInfoLevelCollects(t *testing.T) {
	k, err := kernels.ByName("trfd", kernels.Small)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	if rec.DebugEnabled() {
		t.Fatal("LevelInfo recorder reports DebugEnabled")
	}
	res, err := pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized,
		pipeline.Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	emitted, dropped, _ := rec.EventStats()
	if emitted == 0 || dropped != 0 {
		t.Errorf("LevelInfo compile: %d emitted, %d dropped", emitted, dropped)
	}
	m := res.Metrics()
	if m.Events != int(emitted) || m.EventsDropped != 0 {
		t.Errorf("metrics events = %d/%d, recorder = %d/0", m.Events, m.EventsDropped, emitted)
	}
	byName := map[string]bool{}
	for _, h := range m.Histograms {
		byName[h.Name] = true
	}
	for _, want := range []string{"compile.duration", "phase.duration:phase=parallelize"} {
		if !byName[want] {
			t.Errorf("missing histogram %q in %v", want, m.Histograms)
		}
	}
	// Per-node query steps are Debug-level: an Info stream must not carry
	// them (that is what keeps the production overhead within budget).
	for _, e := range rec.Events() {
		if e.Kind == "query.step" || e.Kind == "query.cache" {
			t.Errorf("Info-level stream contains Debug event %q", e.Kind)
		}
	}
}
